"""Core machinery of the invariant linter: rules, findings, suppressions.

The serving stack's headline guarantees — the int-only quantized hot path,
complete :class:`~repro.serving.streaming.MonitorState` snapshots, the
always-balanced :class:`~repro.serving.ingest.GatewayStats` ledger, the
versioned wire format and end-to-end determinism — are behavioural
invariants.  The test suite exercises them on the paths the tests happen to
take; this package enforces them *mechanically*, on every code path, from
the AST alone, before any test runs.

Structure
---------
* :class:`Finding` — one violation: rule id, ``file:line:col``, message and
  a concrete fix hint.
* :class:`ModuleSource` — a parsed file (text + AST + per-line suppression
  table), handed to every rule exactly once.
* :class:`Rule` — the base class.  A rule declares its id, what invariant it
  protects, and implements :meth:`Rule.check` over one module; rules that
  need cross-file state can emit extra findings from :meth:`Rule.finalize`.
* :func:`run_paths` / :func:`run_source` — the programmatic API used by the
  CLI (``python -m repro.analysis``), by the pytest bridge
  (``tests/test_static_analysis.py``) and by the fixture-corpus tests.

Suppressions
------------
A finding is silenced by a ``# repro: allow[rule-id]`` comment on the
flagged line or the line directly above it.  ``allow[*]`` silences every
rule for that line; several ids may be comma-separated.  Suppressions are
deliberate, reviewable artefacts — the analyzer counts them, and the fixture
tests pin that they work.
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

__all__ = [
    "Finding",
    "ModuleSource",
    "Rule",
    "Report",
    "parse_suppressions",
    "run_source",
    "run_paths",
]

#: ``# repro: allow[int-purity]`` / ``# repro: allow[int-purity, async-safety]``
_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    #: A concrete suggestion for making the finding go away *correctly*
    #: (never "suppress it").
    hint: str = ""

    def format(self) -> str:
        text = "%s:%d:%d [%s] %s" % (self.path, self.line, self.col, self.rule_id, self.message)
        if self.hint:
            text += "\n    hint: %s" % self.hint
        return text


def parse_suppressions(text: str) -> Dict[int, FrozenSet[str]]:
    """Per-line ``# repro: allow[...]`` table (1-based line numbers)."""
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match:
            ids = frozenset(part.strip() for part in match.group(1).split(",") if part.strip())
            if ids:
                table[lineno] = ids
    return table


@dataclass
class ModuleSource:
    """One parsed Python file, as seen by every rule."""

    path: str
    text: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str, path: str = "<string>") -> "ModuleSource":
        return cls(
            path=path,
            text=text,
            tree=ast.parse(text, filename=path),
            suppressions=parse_suppressions(text),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ModuleSource":
        path = Path(path)
        return cls.from_text(path.read_text(encoding="utf-8"), path=path.as_posix())

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a ``# repro: allow[...]`` covers this finding's line."""
        for lineno in (finding.line, finding.line - 1):
            ids = self.suppressions.get(lineno)
            if ids and (finding.rule_id in ids or "*" in ids):
                return True
        return False


class Rule(ABC):
    """One mechanical invariant check.

    Subclasses set :attr:`rule_id` (the stable kebab-case name used in
    suppression comments and CLI output), :attr:`description` and
    :attr:`invariant` (which pinned serving guarantee the rule protects),
    then implement :meth:`check`.
    """

    rule_id: str = ""
    description: str = ""
    #: The ROADMAP-pinned guarantee this rule mechanises.
    invariant: str = ""

    def applies_to(self, module: ModuleSource) -> bool:
        """Fast path-level gate; ``check`` is only called when ``True``."""
        return True

    @abstractmethod
    def check(self, module: ModuleSource) -> Iterable[Finding]:
        """Yield findings for one module."""

    def finalize(self) -> Iterable[Finding]:
        """Extra findings after every module was checked (cross-file rules)."""
        return ()

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint,
        )


@dataclass
class Report:
    """Outcome of one analyzer run."""

    findings: List[Finding]
    files_checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        lines = [finding.format() for finding in self.findings]
        summary = "%d file(s) checked, %d finding(s), %d suppressed" % (
            self.files_checked,
            len(self.findings),
            self.suppressed,
        )
        lines.append(summary)
        return "\n".join(lines)


def _default_rules() -> List[Rule]:
    # Imported lazily so `framework` has no dependency on the rule modules
    # (they import it).
    from repro.analysis.rules import default_rules

    return default_rules()


def _check_module(
    module: ModuleSource, rules: Sequence[Rule]
) -> tuple[List[Finding], int]:
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if module.is_suppressed(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def run_source(
    text: str, path: str = "<string>", rules: Optional[Sequence[Rule]] = None
) -> Report:
    """Analyze one source string (the fixture-test entry point)."""
    rules = list(rules) if rules is not None else _default_rules()
    module = ModuleSource.from_text(text, path=path)
    findings, suppressed = _check_module(module, rules)
    for rule in rules:
        findings.extend(rule.finalize())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return Report(findings=findings, files_checked=1, suppressed=suppressed)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError("not a Python file or directory: %s" % path)
        for candidate in candidates:
            seen[candidate.resolve()] = candidate
    return sorted(seen.values())


def run_paths(
    paths: Iterable[Union[str, Path]], rules: Optional[Sequence[Rule]] = None
) -> Report:
    """Analyze every ``.py`` file under ``paths`` with the given rule set.

    This is the programmatic API: the CLI, the pytest tier-1 bridge and any
    future pre-commit hook all funnel through here.  Rules are fresh per run
    (``rules=None`` builds the default set), so cross-file rule state never
    leaks between runs.
    """
    rules = list(rules) if rules is not None else _default_rules()
    findings: List[Finding] = []
    suppressed = 0
    files = iter_python_files(paths)
    for file_path in files:
        module = ModuleSource.from_file(file_path)
        file_findings, file_suppressed = _check_module(module, rules)
        findings.extend(file_findings)
        suppressed += file_suppressed
    for rule in rules:
        findings.extend(rule.finalize())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return Report(findings=findings, files_checked=len(files), suppressed=suppressed)
