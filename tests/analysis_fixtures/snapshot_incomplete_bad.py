"""Known-bad corpus for ``snapshot-completeness`` (completeness half)."""


class ReplayBuffer:
    """Forgets one attribute; excludes another legitimately."""

    # _scratch is derived scratch space, recomputed on revive.
    _SNAPSHOT_EXCLUDE = ("_scratch",)

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.items = []
        self.cursor = 0  # expect[snapshot-completeness]
        self._scratch = None

    def snapshot(self) -> dict:
        return {"capacity": self.capacity, "items": list(self.items)}

    @classmethod
    def from_snapshot(cls, state: dict) -> "ReplayBuffer":
        buf = cls(state["capacity"])
        buf.items = list(state["items"])
        return buf


class NonLiteralExclude:
    """The exclusion list must be a reviewable literal, not an expression."""

    _SNAPSHOT_EXCLUDE = tuple("ab")  # expect[snapshot-completeness]

    def __init__(self) -> None:
        self.a = 1

    def snapshot(self) -> dict:
        return {"a": self.a}

    @classmethod
    def from_snapshot(cls, state: dict) -> "NonLiteralExclude":
        obj = cls()
        obj.a = state["a"]
        return obj


class NotSnapshotCapable:
    """No snapshot()/from_snapshot() pair: the rule must stay silent."""

    def __init__(self) -> None:
        self.anything = object()
