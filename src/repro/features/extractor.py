"""Assembly of per-window feature vectors into a labelled feature matrix.

This is the interface between the signal substrate and the learning / design
exploration layers: given a synthetic cohort, the extractor produces

* ``X`` — an ``(n_windows, 53)`` feature matrix,
* ``y`` — window labels in ``{-1, +1}``,
* ``session_ids`` / ``patient_ids`` — the grouping keys used by the
  leave-one-session-out cross-validation (24 folds in the paper).

Feature vectors whose window is too short or whose EDR segment degenerates are
dropped rather than imputed, mirroring how unusable clinical windows are
discarded by quality checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.features.ar_features import ar_features
from repro.features.cache import BeatPartialCache, BeatPartials
from repro.features.catalog import FEATURE_NAMES, N_FEATURES
from repro.features.edr import EDR_FS, edr_series_from_amplitudes
from repro.features.hrv import hrv_features
from repro.features.lorenz import lorenz_features
from repro.features.psd_features import psd_features
from repro.signals.dataset import Recording, SyntheticCohort
from repro.signals.windows import BeatWindow, Window, WindowingParams, extract_windows

__all__ = [
    "FeatureExtractionParams",
    "FeatureExtractor",
    "FeatureMatrix",
    "extract_cohort_features",
]


@dataclass
class FeatureExtractionParams:
    """Configuration of the per-window feature extraction."""

    #: Sampling rate of the EDR series used for the AR and PSD features.
    edr_fs: float = EDR_FS
    #: Windowing configuration used when slicing recordings.
    windowing: WindowingParams = field(default_factory=WindowingParams)


@dataclass
class FeatureMatrix:
    """A labelled, session-annotated feature matrix."""

    X: np.ndarray
    y: np.ndarray
    session_ids: np.ndarray
    patient_ids: np.ndarray
    feature_names: List[str] = field(default_factory=lambda: list(FEATURE_NAMES))

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y, dtype=int)
        self.session_ids = np.asarray(self.session_ids, dtype=int)
        self.patient_ids = np.asarray(self.patient_ids, dtype=int)
        if self.X.ndim != 2:
            raise ValueError("X must be two-dimensional")
        n = self.X.shape[0]
        if not (self.y.shape[0] == self.session_ids.shape[0] == self.patient_ids.shape[0] == n):
            raise ValueError("X, y, session_ids and patient_ids must have matching lengths")
        if self.X.shape[1] != len(self.feature_names):
            raise ValueError("feature_names length must match the number of columns of X")

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def n_positive(self) -> int:
        return int(np.sum(self.y == 1))

    @property
    def n_negative(self) -> int:
        return int(np.sum(self.y == -1))

    @property
    def sessions(self) -> np.ndarray:
        """Sorted unique session identifiers (one fold per session)."""
        return np.unique(self.session_ids)

    def select_features(self, indices: Sequence[int]) -> "FeatureMatrix":
        """Return a copy restricted to the given feature columns (in order)."""
        indices = list(indices)
        return FeatureMatrix(
            X=self.X[:, indices].copy(),
            y=self.y.copy(),
            session_ids=self.session_ids.copy(),
            patient_ids=self.patient_ids.copy(),
            feature_names=[self.feature_names[i] for i in indices],
        )

    def split_session(self, session_id: int) -> Tuple["FeatureMatrix", "FeatureMatrix"]:
        """Split into (train, test) where the test set is one held-out session."""
        test_mask = self.session_ids == session_id
        if not np.any(test_mask):
            raise KeyError("unknown session id %r" % session_id)
        train_mask = ~test_mask

        def _subset(mask: np.ndarray) -> "FeatureMatrix":
            return FeatureMatrix(
                X=self.X[mask].copy(),
                y=self.y[mask].copy(),
                session_ids=self.session_ids[mask].copy(),
                patient_ids=self.patient_ids[mask].copy(),
                feature_names=list(self.feature_names),
            )

        return _subset(train_mask), _subset(test_mask)


class FeatureExtractor:
    """Computes the 53-feature vector of individual analysis windows.

    ``feature_cache=True`` (the default) attaches an overlap-aware
    :class:`~repro.features.cache.BeatPartialCache`: windows arriving through
    :meth:`extract_beat_window` with a known
    :attr:`~repro.signals.windows.BeatWindow.first_beat_index` reuse the
    elementwise per-beat partials they share with the previous window instead
    of recomputing them.  The cached path is bit-identical to the full
    recompute (the flag exists so parity can be asserted, not because the
    results differ).
    """

    def __init__(
        self,
        params: Optional[FeatureExtractionParams] = None,
        feature_cache: bool = True,
    ) -> None:
        self.params = params or FeatureExtractionParams()
        self.feature_cache = bool(feature_cache)
        self._cache: Optional[BeatPartialCache] = (
            BeatPartialCache() if self.feature_cache else None
        )

    def extract_window(self, recording: Recording, window: Window) -> np.ndarray:
        """Feature vector of one window; raises ``ValueError`` if unusable."""
        return self.extract_beats(
            window.beats_of(recording),
            window.rr_of(recording),
            window.r_amplitudes_of(recording),
        )

    def extract_beat_window(self, window: BeatWindow) -> np.ndarray:
        """Feature vector of a streaming window, through the overlap cache.

        Windows with unknown provenance (``first_beat_index < 0``) skip the
        cache and take the full-recompute path.
        """
        partials = None
        if self._cache is not None and window.first_beat_index >= 0:
            partials = self._cache.partials_for(
                window.first_beat_index, np.asarray(window.rr_s, dtype=float)
            )
        return self.extract_beats(
            window.beat_times_s, window.rr_s, window.r_amplitudes_mv, partials=partials
        )

    def extract_beats(
        self,
        beats: np.ndarray,
        rr: np.ndarray,
        amplitudes: np.ndarray,
        partials: Optional[BeatPartials] = None,
    ) -> np.ndarray:
        """Feature vector from raw per-window beat arrays.

        This is the self-contained core of :meth:`extract_window`; the
        streaming engine calls it directly on the
        :class:`~repro.signals.windows.BeatWindow` payloads it assembles,
        without a full :class:`~repro.signals.dataset.Recording` in hand.
        Raises ``ValueError`` if the window is unusable.
        """
        beats = np.asarray(beats, dtype=float)
        rr = np.asarray(rr, dtype=float)
        amplitudes = np.asarray(amplitudes, dtype=float)
        if rr.size < 8 or beats.size < 8:
            raise ValueError("window contains too few beats")

        hrv = hrv_features(rr, beats, partials=partials)
        lorenz = lorenz_features(rr, partials=partials)
        _, edr = edr_series_from_amplitudes(beats, amplitudes, fs=self.params.edr_fs)
        ar = ar_features(edr)
        psd = psd_features(edr, fs=self.params.edr_fs)

        vector = np.concatenate((hrv, lorenz, ar, psd))
        if vector.shape[0] != N_FEATURES:
            raise RuntimeError(
                "feature vector has %d entries, expected %d" % (vector.shape[0], N_FEATURES)
            )
        if not np.all(np.isfinite(vector)):
            raise ValueError("non-finite feature value in window")
        return vector

    def extract_batch(
        self, items: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, List[int]]:
        """Feature matrix over a batch of ``(beats, rr, amplitudes)`` windows.

        Unusable windows are skipped; the second return value lists the
        indices (into ``items``) of the rows that were kept, so callers can
        map batched predictions back onto their pending windows.  Rows are
        written straight into one preallocated matrix (no per-row stacking).
        """
        X = np.empty((len(items), N_FEATURES))
        kept: List[int] = []
        for idx, (beats, rr, amplitudes) in enumerate(items):
            try:
                X[len(kept)] = self.extract_beats(beats, rr, amplitudes)
            except ValueError:
                continue
            kept.append(idx)
        return X[: len(kept)], kept

    def extract_recording(
        self, recording: Recording
    ) -> Tuple[np.ndarray, np.ndarray, List[Window]]:
        """Feature matrix, labels and retained windows of one recording."""
        windows = extract_windows(recording, self.params.windowing)
        X = np.empty((len(windows), N_FEATURES))
        labels: List[int] = []
        kept: List[Window] = []
        for window in windows:
            try:
                X[len(kept)] = self.extract_window(recording, window)
            except ValueError:
                continue
            labels.append(window.label)
            kept.append(window)
        return X[: len(kept)], np.asarray(labels, dtype=int), kept


def extract_cohort_features(
    cohort: SyntheticCohort,
    params: Optional[FeatureExtractionParams] = None,
) -> FeatureMatrix:
    """Extract the full labelled feature matrix of a synthetic cohort.

    Returns
    -------
    :class:`FeatureMatrix` whose rows are ordered by (session, window start).
    """
    extractor = FeatureExtractor(params)
    blocks: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    session_ids: List[np.ndarray] = []
    patient_ids: List[np.ndarray] = []
    for recording in cohort.recordings:
        X_rec, y_rec, windows = extractor.extract_recording(recording)
        if X_rec.shape[0] == 0:
            continue
        blocks.append(X_rec)
        labels.append(y_rec)
        session_ids.append(np.full(y_rec.shape[0], recording.session_id, dtype=int))
        patient_ids.append(np.full(y_rec.shape[0], recording.patient_id, dtype=int))
    if not blocks:
        raise ValueError("no usable windows in the cohort")
    return FeatureMatrix(
        X=np.vstack(blocks),
        y=np.concatenate(labels),
        session_ids=np.concatenate(session_ids),
        patient_ids=np.concatenate(patient_ids),
    )
