"""Figure 3 — Pearson correlation matrix of the 53-feature baseline set.

The paper's Figure 3 shows the 53×53 correlation matrix with the four feature
groups annotated; most PSD features, some HRV and some Lorenz features are
highly mutually correlated, which is the redundancy the feature-reduction step
removes.  This experiment computes the matrix on the synthetic cohort and
summarises the within-group / between-group correlation structure so the
block pattern can be compared against the paper qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.feature_selection import correlation_matrix
from repro.features.catalog import FEATURE_GROUPS, group_indices
from repro.features.extractor import FeatureMatrix

__all__ = ["CorrelationSummary", "run", "format_summary"]


@dataclass
class CorrelationSummary:
    """Correlation matrix plus its block-structure summary."""

    matrix: np.ndarray
    #: Mean absolute off-diagonal correlation within each feature group.
    within_group: Dict[str, float]
    #: Mean absolute correlation between each pair of groups.
    between_groups: Dict[Tuple[str, str], float]
    #: The ten most redundant features (highest aggregated |ρ|), by name.
    most_redundant: List[str]


def run(features: FeatureMatrix) -> CorrelationSummary:
    """Compute the Figure 3 correlation matrix and its group summary."""
    matrix = correlation_matrix(features.X)

    within: Dict[str, float] = {}
    between: Dict[Tuple[str, str], float] = {}
    groups = list(FEATURE_GROUPS.keys())
    for group in groups:
        idx = group_indices(group)
        block = matrix[np.ix_(idx, idx)]
        off_diag = block[~np.eye(block.shape[0], dtype=bool)]
        within[group.value] = float(np.mean(np.abs(off_diag))) if off_diag.size else 0.0
    for i, group_a in enumerate(groups):
        for group_b in groups[i + 1 :]:
            block = matrix[np.ix_(group_indices(group_a), group_indices(group_b))]
            between[(group_a.value, group_b.value)] = float(np.mean(np.abs(block)))

    aggregate = np.sum(np.abs(matrix), axis=0) - 1.0
    order = np.argsort(aggregate)[::-1][:10]
    most_redundant = [features.feature_names[i] for i in order]

    return CorrelationSummary(
        matrix=matrix,
        within_group=within,
        between_groups=between,
        most_redundant=most_redundant,
    )


def format_summary(summary: CorrelationSummary) -> str:
    """Text rendering of the block structure (paper Figure 3, qualitatively)."""
    lines = ["Figure 3: correlation structure of the 53-feature set"]
    lines.append("mean |rho| within groups:")
    for group, value in summary.within_group.items():
        lines.append("  %-8s %5.2f" % (group, value))
    lines.append("mean |rho| between groups:")
    for (group_a, group_b), value in summary.between_groups.items():
        lines.append("  %-8s x %-8s %5.2f" % (group_a, group_b, value))
    lines.append("most redundant features: " + ", ".join(summary.most_redundant))
    return "\n".join(lines)
