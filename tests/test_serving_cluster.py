"""Cluster-churn parity harness: cross-host federation is *invisible*.

The contract under test — the federation layer's headline guarantee: for ANY
schedule of ``push`` / ``drain`` / ``handoff`` / ``add_node`` /
``kill_node`` operations across 2–4 gateways, a
:class:`~repro.serving.cluster.GatewayCluster`'s decisions are identical
(bit-exact fixed-point scores) to a single never-federated
:class:`~repro.serving.fleet.MonitorFleet` replaying the same pushes and
drains.  Handoffs move monitor state over real TCP control sockets
(HANDOFF/STATE/ACK with the ACK-before-forget rule), node deaths revive
patients from checkpoint + write-ahead log, and the
:class:`~repro.serving.cluster.ClusterStats` ledger must balance at every
step — every received frame accounted on exactly one host, none
double-counted, none lost.

Like the sharding/reshard parity suites this one is hypothesis-fuzzed: the
churn schedule itself is the fuzzed input.
"""

import asyncio
import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    ACK_VERSION_MISMATCH,
    MONITOR_STATE_VERSION,
    AckFrame,
    GatewayCluster,
    HandoffError,
    HashRing,
    MonitorFleet,
    StreamDecoder,
    decision_sort_key,
    encode_ack,
    encode_chunk,
    encode_handoff,
    encode_state,
)
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg
from repro.signals.windows import WindowingParams

FS = 64.0
WINDOWING = WindowingParams(window_s=60.0, step_s=60.0, min_beats=40)


@pytest.fixture(scope="module")
def workload():
    """A small multi-patient raw-ECG workload as an interleaved frame list."""
    params = CohortParams(
        n_patients=4,
        n_sessions=4,
        session_duration_s=420.0,
        total_seizures=0,
        seed=51,
        ecg_params=ECGWaveformParams(fs=FS),
    )
    cohort = generate_cohort(params)
    rng = np.random.default_rng(52)
    streams = {}
    for recording in cohort.recordings:
        ecg = synthesize_ecg(
            recording.beat_times_s,
            recording.duration_s,
            recording.respiration,
            rng,
            params=ECGWaveformParams(fs=FS),
        )
        chunks = []
        lo = 0
        while lo < ecg.ecg_mv.size:
            size = int(rng.integers(400, 4000))
            chunks.append(ecg.ecg_mv[lo : lo + size])
            lo += size
        streams[recording.patient_id] = chunks
    frames = []
    sequence = {pid: 0 for pid in streams}
    iterators = {pid: iter(chunks) for pid, chunks in streams.items()}
    while iterators:
        for pid in list(iterators):
            try:
                chunk = next(iterators[pid])
            except StopIteration:
                del iterators[pid]
                continue
            frames.append((pid, sequence[pid], chunk))
            sequence[pid] += 1
    return dict(streams=streams, frames=frames)


@pytest.fixture(scope="module")
def quantized_detector(quadratic_model):
    return QuantizedSVM(quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15))


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def _apply_reference_schedule(fleet, frames, schedule):
    """Replay the push/drain shape of ``schedule`` on a plain fleet."""
    drains = []
    cursor = 0
    for op in schedule:
        if op[0] == "push":
            for _ in range(op[1]):
                if cursor >= len(frames):
                    break
                pid, seq, chunk = frames[cursor]
                cursor += 1
                fleet.push(pid, chunk, seq=seq)
        elif op[0] == "drain":
            drains.append(sorted(fleet.drain(), key=decision_sort_key))
    while cursor < len(frames):
        pid, seq, chunk = frames[cursor]
        cursor += 1
        fleet.push(pid, chunk, seq=seq)
    fleet.finish()
    drains.append(sorted(fleet.drain(), key=decision_sort_key))
    return drains


def _assert_drains_identical(reference, candidate, *, exact_scores=True):
    assert len(candidate) == len(reference)
    for ref_drain, got_drain in zip(reference, candidate):
        assert len(got_drain) == len(ref_drain)
        for expected, got in zip(ref_drain, got_drain):
            assert got.patient_id == expected.patient_id
            assert got.start_s == expected.start_s
            assert got.end_s == expected.end_s
            assert got.n_beats == expected.n_beats
            assert got.usable == expected.usable
            assert got.alarm == expected.alarm
            if expected.score is None:
                assert got.score is None
            elif exact_scores:
                assert got.score == expected.score
            else:
                assert math.isclose(got.score, expected.score, rel_tol=1e-9, abs_tol=1e-12)


async def _apply_cluster_schedule(cluster, frames, schedule):
    """Replay ``schedule`` against a started cluster.

    Returns ``(per_drain_decisions, all_decisions, stats)``.  The
    cluster-wide ledger is asserted to balance after *every* operation —
    no frame double-counted, none lost, however the churn interleaves.
    """
    drains = []
    cursor = 0
    seen = []
    for op in schedule:
        if op[0] == "push":
            for _ in range(op[1]):
                if cursor >= len(frames):
                    break
                pid, seq, chunk = frames[cursor]
                cursor += 1
                if pid not in seen:
                    seen.append(pid)
                await cluster.submit(encode_chunk(pid, seq, FS, chunk))
        elif op[0] == "drain":
            drains.append(sorted(cluster.drain(), key=decision_sort_key))
        elif op[0] == "handoff":
            if seen:
                pid = sorted(seen)[op[1] % len(seen)]
                live = cluster.live_nodes
                dest = live[op[2] % len(live)]
                await cluster.handoff(pid, dest)
        elif op[0] == "add_node":
            if cluster.n_nodes < 4:
                await cluster.add_node()
        elif op[0] == "kill_node":
            if cluster.n_nodes > 1:
                live = cluster.live_nodes
                await cluster.kill_node(live[op[1] % len(live)])
        assert cluster.stats().fully_accounted, "ledger broke after %r" % (op,)
    while cursor < len(frames):
        pid, seq, chunk = frames[cursor]
        cursor += 1
        await cluster.submit(encode_chunk(pid, seq, FS, chunk))
    everything = await cluster.stop()
    return drains, everything, cluster.stats()


#: One churn-schedule operation for the federation fuzz.
SCHEDULE_OPS = st.one_of(
    st.tuples(st.just("push"), st.integers(1, 12)),
    st.tuples(st.just("drain")),
    st.tuples(st.just("handoff"), st.integers(0, 3), st.integers(0, 3)),
    st.tuples(st.just("add_node")),
    st.tuples(st.just("kill_node"), st.integers(0, 3)),
)


class TestClusterChurnParityFuzz:
    """Random federation schedules vs a never-federated reference fleet."""

    _reference_cache: dict = {}

    def _reference(self, workload, classifier, schedule):
        key = (
            id(classifier),
            tuple(op for op in schedule if op[0] in ("push", "drain")),
        )
        if key not in self._reference_cache:
            fleet = MonitorFleet(classifier, FS, windowing=WINDOWING)
            self._reference_cache[key] = _apply_reference_schedule(
                fleet, workload["frames"], schedule
            )
        return self._reference_cache[key]

    @given(
        schedule=st.lists(SCHEDULE_OPS, min_size=3, max_size=12),
        n_nodes=st.sampled_from([2, 3]),
    )
    @settings(max_examples=6, deadline=None)
    def test_cluster_churn_parity_is_bit_exact(
        self, workload, quantized_detector, schedule, n_nodes
    ):
        reference = self._reference(workload, quantized_detector, schedule)
        assert any(d.usable for drain in reference for d in drain)

        async def run():
            cluster = GatewayCluster(
                quantized_detector,
                FS,
                n_nodes=n_nodes,
                windowing=WINDOWING,
                queue_depth=8,
            )
            await cluster.start()
            return await _apply_cluster_schedule(cluster, workload["frames"], schedule)

        drains, everything, stats = asyncio.run(run())
        # Per-drain parity for the mid-schedule drains, then the complete
        # decision list against the whole reference workload.
        _assert_drains_identical(reference[:-1], drains)
        flat = sorted((d for drain in reference for d in drain), key=decision_sort_key)
        _assert_drains_identical([flat], [everything])
        assert stats.fully_accounted
        assert all(g.frames_errored == 0 for g in stats.gateways.values())
        assert all(g.frames_errored == 0 for g in stats.retired.values())


class TestHandoffProtocol:
    def test_handoff_moves_ownership_and_forwards_backlog(
        self, workload, quantized_detector
    ):
        frames = workload["frames"]

        async def run():
            cluster = GatewayCluster(quantized_detector, FS, n_nodes=2, windowing=WINDOWING)
            await cluster.start()
            pid = frames[0][0]
            src = cluster.node_of(pid)
            dest = next(s for s in cluster.live_nodes if s != src)
            # Freeze delivery so the patient builds a queued backlog that the
            # handoff must forward (otherwise the pump drains it first).
            cluster._nodes[src].gateway.quiesce_patients([pid])
            pushed = 0
            for fpid, seq, chunk in frames:
                if fpid == pid:
                    await cluster.submit(encode_chunk(fpid, seq, FS, chunk))
                    pushed += 1
                    if pushed == 5:
                        break
            await cluster.handoff(pid, dest)
            stats = cluster.stats()
            owner = cluster.node_of(pid)
            src_stats = stats.gateways["g%d" % src]
            await cluster.stop()
            return src, dest, owner, stats, src_stats, pushed

        src, dest, owner, stats, src_stats, pushed = asyncio.run(run())
        assert owner == dest
        assert stats.handoffs == 1 and stats.handoff_failures == 0
        assert src_stats.frames_forwarded == pushed  # the whole backlog moved
        assert stats.fully_accounted

    def test_mid_handoff_crash_leaves_exactly_one_owner(
        self, workload, quantized_detector
    ):
        """The destination imports the state, then dies before ACKing: the
        source must roll back (ACK-before-forget) and keep sole ownership —
        no frame double-counted, none lost, proven by final parity."""
        frames = workload["frames"]
        cut = len(frames) // 2

        async def run():
            cluster = GatewayCluster(
                quantized_detector, FS, n_nodes=2, windowing=WINDOWING, queue_depth=8
            )
            await cluster.start()
            for pid, seq, chunk in frames[:cut]:
                await cluster.submit(encode_chunk(pid, seq, FS, chunk))
            # Drain first so every monitor materialises in its fleet: the
            # handoff then ships *real* DSP/window state, and the rollback
            # has real state to restore.
            mid_drain = sorted(cluster.drain(), key=decision_sort_key)
            victim = frames[0][0]
            src = cluster.node_of(victim)
            dest = next(s for s in cluster.live_nodes if s != src)
            assert cluster._nodes[src].fleet.has_patient(victim)
            cluster._nodes[dest]._fail_next_ack = True
            with pytest.raises(HandoffError, match="before ACKing"):
                await cluster.handoff(victim, dest)
            # Exactly one owner: the source got its state rolled back, the
            # crashed destination discarded its half-import.
            assert cluster.node_of(victim) == src
            assert not cluster._nodes[dest].fleet.has_patient(victim)
            assert cluster._nodes[src].fleet.has_patient(victim)
            mid = cluster.stats()
            assert mid.handoff_failures == 1 and mid.handoffs == 0
            assert mid.fully_accounted
            for pid, seq, chunk in frames[cut:]:
                await cluster.submit(encode_chunk(pid, seq, FS, chunk))
            everything = await cluster.stop()
            return mid_drain, everything, cluster.stats()

        mid_drain, everything, stats = asyncio.run(run())
        reference = _apply_reference_schedule(
            MonitorFleet(quantized_detector, FS, windowing=WINDOWING),
            frames,
            [("push", cut), ("drain",)],
        )
        _assert_drains_identical(reference[:1], [mid_drain])
        flat = sorted((d for drain in reference for d in drain), key=decision_sort_key)
        _assert_drains_identical([flat], [everything])
        assert stats.fully_accounted
        assert all(g.frames_errored == 0 for g in stats.gateways.values())

    def test_destination_refuses_a_future_state_version_over_tcp(
        self, quantized_detector
    ):
        """A version-skewed source is refused before anything is unpickled."""

        async def run():
            cluster = GatewayCluster(quantized_detector, FS, n_nodes=2)
            await cluster.start()
            addr = cluster._nodes[0].control_addr
            reader, writer = await asyncio.open_connection(*addr)
            writer.write(
                encode_handoff(5, 9, MONITOR_STATE_VERSION + 1, FS)
                + encode_state(5, 9, FS, pickle.dumps(None))
            )
            await writer.drain()
            decoder = StreamDecoder()
            ack = None
            while ack is None:
                data = await reader.read(4096)
                assert data, "control connection closed without an ACK"
                for frame in decoder.feed(data):
                    ack = frame
            writer.close()
            await cluster.stop()
            return ack

        ack = asyncio.run(run())
        assert isinstance(ack, AckFrame)
        assert ack.status == ACK_VERSION_MISMATCH and ack.token == 9

    def test_handoff_validation_errors(self, quantized_detector):
        async def run():
            cluster = GatewayCluster(quantized_detector, FS, n_nodes=2)
            await cluster.start()
            with pytest.raises(KeyError, match="unknown to the cluster"):
                await cluster.handoff(123, 1)
            await cluster.submit(encode_chunk(3, 0, FS, np.zeros(64)))
            with pytest.raises(ValueError, match="not a live node"):
                await cluster.handoff(3, 99)
            # Handoff to the current owner is a no-op, not an error.
            await cluster.handoff(3, cluster.node_of(3))
            assert cluster.stats().handoffs == 0
            await cluster.stop()

        asyncio.run(run())


class TestNodeChurn:
    def test_node_kill_revives_patients_from_checkpoint_and_wal(
        self, workload, quantized_detector
    ):
        """Crash a gateway mid-workload: its patients revive on the
        survivors bit-identically, from checkpoint plus frame replay."""
        frames = workload["frames"]

        async def run():
            cluster = GatewayCluster(
                quantized_detector, FS, n_nodes=2, windowing=WINDOWING, queue_depth=8
            )
            await cluster.start()
            third = len(frames) // 3
            for pid, seq, chunk in frames[:third]:
                await cluster.submit(encode_chunk(pid, seq, FS, chunk))
            cluster.drain()  # checkpoint everything delivered so far
            for pid, seq, chunk in frames[third : 2 * third]:
                await cluster.submit(encode_chunk(pid, seq, FS, chunk))
            victim = cluster.live_nodes[0]
            revived = await cluster.kill_node(victim)
            mid = cluster.stats()
            assert mid.fully_accounted
            for pid, seq, chunk in frames[2 * third :]:
                await cluster.submit(encode_chunk(pid, seq, FS, chunk))
            everything = await cluster.stop()
            return victim, revived, everything, cluster.stats()

        victim, revived, everything, stats = asyncio.run(run())
        assert stats.node_deaths == 1
        assert "g%d" % victim in stats.retired
        assert stats.frames_replayed > 0
        assert stats.fully_accounted
        reference = _apply_reference_schedule(
            MonitorFleet(quantized_detector, FS, windowing=WINDOWING), frames, []
        )
        # One mid-schedule drain happened; compare the complete decision set.
        flat = sorted((d for drain in reference for d in drain), key=decision_sort_key)
        _assert_drains_identical([flat], [everything])

    def test_add_node_rehomes_via_real_handoffs(self, workload, quantized_detector):
        frames = workload["frames"]

        async def run():
            cluster = GatewayCluster(
                quantized_detector, FS, n_nodes=2, windowing=WINDOWING, queue_depth=8
            )
            await cluster.start()
            half = len(frames) // 2
            for pid, seq, chunk in frames[:half]:
                await cluster.submit(encode_chunk(pid, seq, FS, chunk))
            before = cluster.stats()
            slot = await cluster.add_node()
            after = cluster.stats()
            assert after.fully_accounted
            for pid, seq, chunk in frames[half:]:
                await cluster.submit(encode_chunk(pid, seq, FS, chunk))
            everything = await cluster.stop()
            return slot, before, after, everything, cluster.stats()

        slot, before, after, everything, stats = asyncio.run(run())
        assert slot == 2 and before.nodes == 2 and after.nodes == 3
        assert after.handoffs >= 0  # minimal-movement: possibly nobody moved
        reference = _apply_reference_schedule(
            MonitorFleet(quantized_detector, FS, windowing=WINDOWING), frames, []
        )
        flat = sorted((d for drain in reference for d in drain), key=decision_sort_key)
        _assert_drains_identical([flat], [everything])
        assert stats.fully_accounted

    def test_killing_the_last_node_is_refused(self, quantized_detector):
        async def run():
            cluster = GatewayCluster(quantized_detector, FS, n_nodes=2)
            await cluster.start()
            await cluster.kill_node(0)
            with pytest.raises(ValueError, match="last node"):
                await cluster.kill_node(1)
            await cluster.stop()

        asyncio.run(run())


class TestDataPlane:
    def test_any_node_routes_to_the_owner(self, quantized_detector):
        """A producer may connect to any node: frames reach the owning
        gateway cluster-wide, and a control frame drops the connection."""

        async def run():
            cluster = GatewayCluster(quantized_detector, FS, n_nodes=2)
            addresses = await cluster.serve()
            assert sorted(addresses) == ["g0", "g1"]
            entry = addresses["g0"]
            reader, writer = await asyncio.open_connection(*entry)
            pids = list(range(8))
            for pid in pids:
                writer.write(encode_chunk(pid, 0, FS, np.zeros(64)))
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            for _ in range(100):
                await asyncio.sleep(0.01)
                if cluster.stats().frames_routed == len(pids):
                    break
            owners = {pid: cluster.node_of(pid) for pid in pids}
            stats = cluster.stats()
            # A control frame on the data plane kills that connection only.
            reader2, writer2 = await asyncio.open_connection(*entry)
            writer2.write(encode_ack(1, 1, 0, FS))
            await writer2.drain()
            assert await reader2.read(4096) == b""  # server closed on us
            for _ in range(100):
                await asyncio.sleep(0.01)
                if cluster.stats().wire_errors == 1:
                    break
            wire_errors = cluster.stats().wire_errors
            await cluster.stop()
            return owners, stats, wire_errors

        owners, stats, wire_errors = asyncio.run(run())
        assert stats.frames_routed == len(owners)
        assert stats.fully_accounted
        assert set(owners.values()) == {0, 1}  # both nodes ended up owning some
        assert wire_errors == 1


class TestRingTombstones:
    """HashRing.without_shards: the failover primitive under the cluster."""

    def test_exactly_the_dead_shards_patients_move(self):
        ring = HashRing(4)
        patients = list(range(200))
        tombstoned, moved = ring.without_shards([2], patients)
        assert tombstoned.excluded == frozenset({2})
        for pid in patients:
            if ring.shard_of(pid) == 2:
                assert pid in moved and moved[pid][0] == 2
                assert tombstoned.shard_of(pid) != 2
            else:
                # Survivors keep every one of their patients.
                assert pid not in moved
                assert tombstoned.shard_of(pid) == ring.shard_of(pid)

    def test_exclusions_accumulate(self):
        ring = HashRing(4)
        once, _ = ring.without_shards([0])
        twice, _ = once.without_shards([3])
        assert twice.excluded == frozenset({0, 3})
        assert all(twice.shard_of(pid) in (1, 2) for pid in range(100))

    def test_excluding_every_shard_is_refused(self):
        ring = HashRing(2)
        with pytest.raises(ValueError, match="every shard"):
            ring.without_shards([0, 1])
        once, _ = ring.without_shards([0])
        with pytest.raises(ValueError, match="every shard"):
            once.without_shards([1])

    def test_excluding_an_already_dead_shard_is_a_noop(self):
        ring = HashRing(3)
        once, _ = ring.without_shards([1])
        again, moved = once.without_shards([1])
        assert again is once and moved == {}

    def test_out_of_range_shard_is_refused(self):
        with pytest.raises(ValueError, match="not a shard"):
            HashRing(3).without_shards([7])
