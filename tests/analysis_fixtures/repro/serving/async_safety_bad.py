"""Known-bad corpus for ``async-safety``.

Lives under a mirrored ``repro/serving/`` directory on purpose: the rule is
path-gated to the serving package and this corpus exercises the gate itself.
"""

import threading
import time

_STATE_LOCK = threading.Lock()


async def blocking_sleep() -> None:
    time.sleep(0.1)  # expect[async-safety]


async def blocking_socket_read(sock) -> bytes:
    return sock.recv(4096)  # expect[async-safety]


async def nested_defs_are_not_scanned() -> None:
    def helper() -> None:
        time.sleep(0.1)  # fine: runs synchronously when explicitly called

    helper()


class BadGateway:
    def __init__(self) -> None:
        self._frames_received = 0
        self._frames_delivered = 0

    async def half_counted_frame(self, queue, frame) -> None:
        self._frames_received += 1
        await queue.put(frame)  # expect[async-safety]
        self._frames_delivered += 1

    async def atomic_accounting_is_fine(self, queue, frame) -> None:
        await queue.put(frame)
        self._frames_received += 1
        self._frames_delivered += 1

    async def lock_across_await(self, queue, frame) -> None:
        with _STATE_LOCK:  # expect[async-safety]
            await queue.put(frame)

    async def gap_drop_split_across_await(self, queue, frame) -> None:
        # The lossy-pump bug class: a gap-dropped frame's accounting must
        # leave the ledger balanced before the coroutine can suspend.
        self._frames_gap_dropped += 1
        await queue.put(frame)  # expect[async-safety]
        self._queued -= 1
