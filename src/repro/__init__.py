"""repro — reproduction of "Tailoring SVM Inference for Resource-Efficient
ECG-Based Epilepsy Monitors" (Ferretti et al., DATE 2019).

The library is organised bottom-up:

* :mod:`repro.signals`     — synthetic ECG / RR / respiration cohort (the
  clinical dataset substitute);
* :mod:`repro.dsp`         — signal-processing substrate (R-peak detection,
  AR models, Welch PSD, resampling);
* :mod:`repro.features`    — the 53-feature set (HRV, Lorenz, AR of EDR,
  PSD of EDR);
* :mod:`repro.svm`         — from-scratch SVM training (SMO), kernels and
  SV budgeting;
* :mod:`repro.quant`       — fixed-point quantisation and the bit-accurate
  integer inference pipeline;
* :mod:`repro.hardware`    — analytical 40 nm area / energy models of the
  accelerator;
* :mod:`repro.core`        — the paper's optimisation flows (feature
  selection, SV budgeting, bitwidth search, combined flow) and the
  leave-one-session-out evaluation;
* :mod:`repro.serving`     — the online engine: streaming per-patient
  monitors (chunked R-peak detection, incremental windowing) and batched
  fleet-scale inference;
* :mod:`repro.experiments` — regeneration of every table and figure.

Quickstart::

    from repro.experiments.data import get_experiment_data
    from repro.core import leave_one_session_out, float_svm_factory

    data = get_experiment_data("quick")
    result = leave_one_session_out(data.features, float_svm_factory())
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "signals",
    "dsp",
    "features",
    "svm",
    "quant",
    "hardware",
    "core",
    "serving",
    "experiments",
    "__version__",
]
