"""Unit tests for the synthetic ECG waveform synthesiser."""

import numpy as np
import pytest

from repro.signals.ecg_model import ECGWaveformParams, modulated_r_amplitudes, synthesize_ecg
from repro.signals.respiration import generate_respiration
from repro.signals.rr_model import RRModelParams, generate_rr_series


@pytest.fixture(scope="module")
def short_session():
    rng = np.random.default_rng(21)
    duration = 240.0
    respiration = generate_respiration(duration, [], rng)
    series = generate_rr_series(duration, [], respiration, rng, RRModelParams(ectopic_rate=0.0))
    return duration, respiration, series, rng


class TestModulatedRAmplitudes:
    def test_shape_matches_beats(self, short_session):
        duration, respiration, series, rng = short_session
        amps = modulated_r_amplitudes(series.beat_times_s, respiration, np.random.default_rng(0))
        assert amps.shape == series.beat_times_s.shape

    def test_mean_close_to_base_amplitude(self, short_session):
        _, respiration, series, _ = short_session
        amps = modulated_r_amplitudes(
            series.beat_times_s, respiration, np.random.default_rng(0), base_amplitude_mv=1.0
        )
        assert np.mean(amps) == pytest.approx(1.0, abs=0.1)

    def test_modulation_depth_scales(self, short_session):
        _, respiration, series, _ = short_session
        weak = modulated_r_amplitudes(
            series.beat_times_s,
            respiration,
            np.random.default_rng(0),
            edr_modulation=0.02,
            amplitude_jitter=0.0,
        )
        strong = modulated_r_amplitudes(
            series.beat_times_s,
            respiration,
            np.random.default_rng(0),
            edr_modulation=0.3,
            amplitude_jitter=0.0,
        )
        assert np.std(strong) > np.std(weak)


class TestSynthesizeECG:
    def test_output_length(self, short_session):
        duration, respiration, series, _ = short_session
        ecg = synthesize_ecg(series.beat_times_s, duration, respiration, np.random.default_rng(1))
        assert ecg.ecg_mv.shape == ecg.t.shape
        assert ecg.t[-1] == pytest.approx(duration, abs=1.0 / ecg.fs + 1e-9)

    def test_r_peaks_dominate_signal(self, short_session):
        duration, respiration, series, _ = short_session
        params = ECGWaveformParams(noise_mv=0.0, baseline_wander_mv=0.0)
        ecg = synthesize_ecg(
            series.beat_times_s, duration, respiration, np.random.default_rng(1), params
        )
        # The maximum of the trace should be close to the R amplitude (~1 mV).
        assert 0.7 < ecg.ecg_mv.max() < 1.6

    def test_signal_energy_near_beats(self, short_session):
        duration, respiration, series, _ = short_session
        params = ECGWaveformParams(noise_mv=0.0, baseline_wander_mv=0.0)
        ecg = synthesize_ecg(
            series.beat_times_s, duration, respiration, np.random.default_rng(1), params
        )
        beat = series.beat_times_s[10]
        idx = int(beat * ecg.fs)
        window = ecg.ecg_mv[max(idx - 3, 0) : idx + 4]
        assert window.max() > 0.5

    def test_requires_at_least_two_beats(self, short_session):
        duration, respiration, _, _ = short_session
        with pytest.raises(ValueError):
            synthesize_ecg(np.array([1.0]), duration, respiration, np.random.default_rng(1))

    def test_custom_sampling_rate(self, short_session):
        duration, respiration, series, _ = short_session
        params = ECGWaveformParams(fs=64.0)
        ecg = synthesize_ecg(
            series.beat_times_s, duration, respiration, np.random.default_rng(1), params
        )
        assert ecg.fs == 64.0
        assert ecg.ecg_mv.size == int(np.ceil(duration * 64.0)) + 1
