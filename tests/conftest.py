"""Shared fixtures for the test suite.

The expensive objects (a small synthetic cohort, its feature matrix and a
trained quadratic SVM) are built once per session; individual tests treat them
as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.features.extractor import FeatureMatrix, extract_cohort_features
from repro.signals.dataset import CohortParams, generate_cohort
from repro.svm.kernels import PolynomialKernel
from repro.svm.model import SVMTrainParams, train_svm

# ---------------------------------------------------------------------------
# Hypothesis profiles.  CI selects "ci" via ``--hypothesis-profile=ci``:
# derandomised (a red CI run must be reproducible, not a lottery), no
# deadline (shared runners stall unpredictably) and more examples for every
# property test that does not cap its own budget.  Tests that *do* pass an
# explicit ``max_examples`` (the DSP-heavy churn/parity fuzzes) keep their
# caps and inherit the rest of the profile.
# ---------------------------------------------------------------------------
hypothesis_settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.register_profile("dev", deadline=None)


#: Small cohort used throughout the test suite: fast to generate, but with the
#: same structure as the full profiles (multiple patients and sessions, rare
#: seizures, arousal / stress confounders).
TEST_COHORT_PARAMS = CohortParams(
    n_patients=3,
    n_sessions=6,
    session_duration_s=1500.0,
    total_seizures=8,
    seed=7,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_cohort():
    return generate_cohort(TEST_COHORT_PARAMS)


@pytest.fixture(scope="session")
def feature_matrix(small_cohort) -> FeatureMatrix:
    return extract_cohort_features(small_cohort)


@pytest.fixture(scope="session")
def quadratic_model(feature_matrix) -> object:
    """A quadratic SVM trained on the full small-cohort feature matrix."""
    return train_svm(
        feature_matrix.X,
        feature_matrix.y,
        kernel=PolynomialKernel(degree=2),
        params=SVMTrainParams(),
    )


@pytest.fixture(scope="session")
def separable_dataset(rng):
    """A simple, well-separated 2-D binary dataset for the SVM unit tests."""
    n = 80
    pos = rng.normal(loc=[2.0, 2.0], scale=0.5, size=(n // 2, 2))
    neg = rng.normal(loc=[-2.0, -2.0], scale=0.5, size=(n // 2, 2))
    X = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n // 2, dtype=int), -np.ones(n // 2, dtype=int)])
    order = rng.permutation(n)
    return X[order], y[order]
