"""Hot-path pinning tests: ring windower, overlap feature cache, fused kernel.

This optimisation round rebuilt three layers for raw speed — the ring-buffer
:class:`~repro.signals.windows.StreamingWindower`, the overlap-aware
:class:`~repro.features.cache.BeatPartialCache` and the preallocated fused
batch pipeline of :class:`~repro.quant.quantized_model.QuantizedSVM` — all
under one contract: **bit-exactness** against the straightforward reference
computation.  These tests pin that contract:

* a hypothesis property that the ring windower (forced to wrap and grow by a
  tiny initial capacity, with a snapshot/restore mid-stream) emits windows
  bit-identical to a one-shot push of the same beats,
* feature-cache parity fuzz (cached vs ``feature_cache=False``) over
  overlapping streamed windows, the seizure-enriched offline stride
  (``seizure_step_s < step_s``), and a windower reset after a gap,
* fused-kernel parity against the reference per-row path across random
  quantization configs, batch shapes, threads, pickling and the wide-word
  fallback.
"""

import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.features.cache import BeatPartialCache
from repro.features.extractor import FeatureExtractor
from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import MonitorFleet, StreamingMonitor
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.windows import (
    BeatWindow,
    StreamingWindower,
    WindowingParams,
    extract_windows,
)
from repro.svm.model import train_svm


class TinyWindower(StreamingWindower):
    """Ring windower with a 4-slot initial buffer: every test wraps and grows."""

    _INITIAL_CAPACITY = 4


def _windows_equal(a, b):
    assert len(a) == len(b)
    for wa, wb in zip(a, b):
        assert wa.start_s == wb.start_s
        assert wa.end_s == wb.end_s
        assert wa.first_beat_index == wb.first_beat_index
        assert np.array_equal(wa.beat_times_s, wb.beat_times_s)
        assert np.array_equal(wa.rr_s, wb.rr_s)
        assert np.array_equal(wa.r_amplitudes_mv, wb.r_amplitudes_mv)


def _beat_stream(rng, n_beats):
    rr = rng.uniform(0.3, 1.4, size=n_beats)
    times = np.cumsum(rr)
    amps = 1.0 + 0.3 * rng.standard_normal(n_beats)
    return times, amps


class TestRingWindowerProperty:
    @given(
        n_beats=st.integers(0, 120),
        n_chunks=st.integers(1, 12),
        step_divisor=st.sampled_from([1, 2, 4]),
        snapshot_at=st.integers(0, 11),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunked_ring_matches_one_shot(
        self, n_beats, n_chunks, step_divisor, snapshot_at, seed
    ):
        """Any chunking, wraparound, growth and a mid-stream snapshot/restore
        emit exactly the windows of a single push of the whole stream."""
        rng = np.random.default_rng(seed)
        times, amps = _beat_stream(rng, n_beats)
        params = WindowingParams(
            window_s=10.0, step_s=10.0 / step_divisor, min_beats=4
        )

        reference = StreamingWindower(params)
        expected = reference.push(times, amps)

        boundaries = np.sort(rng.integers(0, n_beats + 1, size=n_chunks - 1))
        edges = np.concatenate(([0], boundaries, [n_beats])).astype(int)
        ring = TinyWindower(params)
        emitted = []
        for k, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
            if k == snapshot_at % max(n_chunks, 1):
                # Round-trip through the picklable snapshot mid-stream —
                # possibly mid-wrap of the tiny ring buffer.
                state = pickle.loads(pickle.dumps(ring.snapshot()))
                ring = TinyWindower.from_snapshot(state)
            emitted.extend(ring.push(times[lo:hi], amps[lo:hi]))

        _windows_equal(expected, emitted)

    def test_absolute_beat_index_survives_restore(self):
        rng = np.random.default_rng(3)
        times, amps = _beat_stream(rng, 80)
        params = WindowingParams(window_s=8.0, step_s=2.0, min_beats=4)
        ring = TinyWindower(params)
        out = list(ring.push(times[:50], amps[:50]))
        ring = TinyWindower.from_snapshot(ring.snapshot())
        out.extend(ring.push(times[50:], amps[50:]))
        firsts = [w.first_beat_index for w in out]
        assert all(f >= 0 for f in firsts)
        assert firsts == sorted(firsts)


def _stream_windows(params, times, amps, rng, resets=()):
    """Windows emitted from a chunked stream, with optional mid-stream resets.

    ``resets`` holds chunk indices; before pushing that chunk the windower is
    reset to the chunk's first beat time (a gap in the stream).
    """
    windower = StreamingWindower(params)
    edges = np.sort(rng.integers(0, times.shape[0] + 1, size=6))
    edges = np.concatenate(([0], edges, [times.shape[0]])).astype(int)
    out = []
    for k, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        if k in resets and hi > lo:
            windower.reset(float(times[lo]) - 0.01)
        out.extend(windower.push(times[lo:hi], amps[lo:hi]))
    return out


class TestFeatureCacheParity:
    def _assert_parity(self, windows):
        cached = FeatureExtractor(feature_cache=True)
        uncached = FeatureExtractor(feature_cache=False)
        assert cached._cache is not None
        assert uncached._cache is None
        compared = 0
        for window in windows:
            try:
                expected = uncached.extract_beat_window(window)
            except ValueError:
                with pytest.raises(ValueError):
                    cached.extract_beat_window(window)
                continue
            got = cached.extract_beat_window(window)
            assert np.array_equal(expected, got)
            compared += 1
        return compared, cached._cache

    def test_overlapping_stream_bit_identical(self):
        rng = np.random.default_rng(11)
        times, amps = _beat_stream(rng, 700)
        params = WindowingParams(window_s=40.0, step_s=10.0, min_beats=8)
        windows = _stream_windows(params, times, amps, rng)
        compared, cache = self._assert_parity(windows)
        assert compared >= 10
        # The whole point of the cache: overlapping windows actually hit it.
        assert cache.hits >= compared - 2

    def test_reset_after_gap_invalidates_cleanly(self):
        """A windower reset (stream gap) must not alias pre-gap partials onto
        post-gap windows: absolute beat indices keep growing across resets."""
        rng = np.random.default_rng(12)
        times, amps = _beat_stream(rng, 600)
        params = WindowingParams(window_s=30.0, step_s=7.5, min_beats=8)
        windows = _stream_windows(params, times, amps, rng, resets={2, 4})
        firsts = [w.first_beat_index for w in windows]
        assert firsts == sorted(firsts)
        compared, _ = self._assert_parity(windows)
        assert compared >= 5

    def test_seizure_enriched_stride_parity(self):
        """The offline seizure-context grid (``seizure_step_s < step_s``)
        produces irregular, non-monotone overlaps; the cache must reseed or
        hit correctly and stay bit-identical throughout."""
        cohort = generate_cohort(
            CohortParams(
                n_patients=1,
                n_sessions=1,
                session_duration_s=1800.0,
                total_seizures=2,
                seed=5,
            )
        )
        recording = cohort.recordings[0]
        params = WindowingParams(
            window_s=180.0, step_s=90.0, seizure_step_s=30.0, min_beats=40
        )
        offline = extract_windows(recording, params)
        assert any(
            0 < (b.start_s - a.start_s) < params.step_s
            for a, b in zip(offline, offline[1:])
        ), "expected the seizure-context grid to densify the stride"
        beat_windows = [
            BeatWindow(
                start_s=w.start_s,
                end_s=w.end_s,
                beat_times_s=w.beats_of(recording),
                rr_s=w.rr_of(recording),
                r_amplitudes_mv=w.r_amplitudes_of(recording),
                first_beat_index=w.beat_slice.start,
            )
            for w in offline
        ]
        compared, cache = self._assert_parity(beat_windows)
        assert compared >= 10
        assert cache.hits > 0

    def test_unknown_provenance_skips_cache(self):
        rng = np.random.default_rng(13)
        times, amps = _beat_stream(rng, 60)
        window = BeatWindow(
            start_s=0.0,
            end_s=float(times[-1]),
            beat_times_s=times,
            rr_s=np.diff(times),
            r_amplitudes_mv=amps,
        )
        assert window.first_beat_index == -1
        cached = FeatureExtractor(feature_cache=True)
        uncached = FeatureExtractor(feature_cache=False)
        assert np.array_equal(
            cached.extract_beat_window(window), uncached.extract_beat_window(window)
        )
        assert cached._cache.hits == 0 and cached._cache.reseeds == 0

    def test_cache_reseeds_on_mismatched_overlap(self):
        cache = BeatPartialCache()
        rng = np.random.default_rng(14)
        rr = rng.uniform(0.5, 1.0, size=40)
        cache.partials_for(0, rr[:30])
        # Same index range, different values: the overlap check must reject
        # the stale run and reseed rather than stitch wrong partials.
        altered = rr[:30].copy()
        altered[10] += 0.25
        partials = cache.partials_for(0, altered)
        assert partials is not None
        assert np.array_equal(partials.hr, 60.0 / altered)
        assert cache.reseeds == 2

    def test_flag_plumbs_through_serving_layers(self):
        monitor = StreamingMonitor(patient_id=1, fs=128.0, feature_cache=False)
        assert monitor._extractor._cache is None
        restored = StreamingMonitor.from_snapshot(
            monitor.snapshot(), feature_cache=False
        )
        assert restored.feature_cache is False
        assert restored._extractor._cache is None

        model, _ = _random_model(np.random.default_rng(15))
        detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        fleet = MonitorFleet(detector, fs=128.0, feature_cache=False)
        fleet.add_patient(7)
        assert fleet.monitor(7)._extractor._cache is None


def _random_model(rng, n_samples=40, n_features=6):
    X = rng.normal(size=(n_samples, n_features)) * rng.uniform(
        0.1, 10.0, size=n_features
    )
    y = np.where(rng.random(n_samples) > 0.5, 1, -1)
    y[0], y[1] = 1, -1
    return train_svm(X, y), X


class TestFusedKernelParity:
    def _assert_parity(self, det, X):
        ref = QuantizedSVM(det.model, det.config)
        ref._use_fused = False
        assert np.array_equal(det.decision_function(X), ref.decision_function(X))
        assert np.array_equal(det.predict(X), ref.predict(X))
        s, l = det.scores_and_labels(X)
        rs, rl = ref.scores_and_labels(X)
        assert np.array_equal(s, rs)
        assert np.array_equal(l, rl)

    def test_random_configs_bit_identical(self):
        rng = np.random.default_rng(21)
        model, X = _random_model(rng)
        for _ in range(12):
            config = QuantizationConfig(
                feature_bits=int(rng.integers(4, 16)),
                coeff_bits=int(rng.integers(4, 20)),
                truncate_after_dot=int(rng.integers(0, 10)),
                truncate_after_square=int(rng.integers(0, 10)),
            )
            det = QuantizedSVM(model, config)
            assert det._use_fused
            batch = X[rng.integers(0, X.shape[0], size=int(rng.integers(1, 25)))]
            self._assert_parity(det, batch)

    def test_edge_shapes(self):
        rng = np.random.default_rng(22)
        model, X = _random_model(rng)
        det = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        # Empty batch.
        empty = det.predict(np.empty((0, X.shape[1])))
        assert empty.shape == (0,)
        # 1-D input (single window).
        self._assert_parity(det, X[0])
        # Single-row 2-D input.
        self._assert_parity(det, X[:1])
        # A batch larger than the initial workspace capacity (forces growth).
        big = np.tile(X, (4, 1))
        assert big.shape[0] > 64
        self._assert_parity(det, big)

    def test_narrow_mac1_gating_and_parity(self):
        # The narrow (int32 MAC1) stage engages only when the exact
        # worst-case bound proves every MAC1 intermediate fits 32 bits;
        # wider configs stay fused but run the int64 einsum.  Both branches
        # must be bit-identical to the unfused reference.
        rng = np.random.default_rng(26)
        model, X = _random_model(rng)
        narrow = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        assert narrow._use_fused and narrow._use_narrow_mac1
        assert narrow._sv_shifted_t32 is not None
        self._assert_parity(narrow, X)

        wide = QuantizedSVM(model, QuantizationConfig(feature_bits=18, coeff_bits=8))
        assert wide._use_fused and not wide._use_narrow_mac1
        assert wide._sv_shifted_t32 is None
        self._assert_parity(wide, X)

    def test_wide_words_fall_back_to_reference(self):
        rng = np.random.default_rng(23)
        model, X = _random_model(rng)
        det = QuantizedSVM(model, QuantizationConfig(feature_bits=63, coeff_bits=15))
        assert not det._use_fused
        a = det.predict(X)
        b = np.concatenate([det.predict(X[i : i + 1]) for i in range(X.shape[0])])
        assert np.array_equal(a, b)

    def test_pickle_round_trip(self):
        rng = np.random.default_rng(24)
        model, X = _random_model(rng)
        det = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        det.predict(X)  # populate the thread-local workspace before pickling
        clone = pickle.loads(pickle.dumps(det))
        assert np.array_equal(det.predict(X), clone.predict(X))
        assert np.array_equal(
            det.decision_function(X), clone.decision_function(X)
        )

    def test_thread_safety_of_workspaces(self):
        rng = np.random.default_rng(25)
        model, X = _random_model(rng, n_samples=60)
        det = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        expected = det.predict(X)
        errors = []

        def worker(seed):
            r = np.random.default_rng(seed)
            for _ in range(30):
                idx = r.integers(0, X.shape[0], size=int(r.integers(1, 40)))
                if not np.array_equal(det.predict(X[idx]), expected[idx]):
                    errors.append(seed)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestBatchExtraction:
    def test_extract_batch_matches_per_window(self):
        rng = np.random.default_rng(31)
        items = []
        for _ in range(12):
            n = int(rng.integers(3, 80))  # some below the 8-beat usability bar
            times, amps = _beat_stream(rng, n)
            items.append((times, np.diff(times), amps))
        extractor = FeatureExtractor(feature_cache=False)
        X, kept = extractor.extract_batch(items)
        assert X.shape[0] == len(kept)
        for row, idx in zip(X, kept):
            beats, rr, amps = items[idx]
            assert np.array_equal(row, extractor.extract_beats(beats, rr, amps))
        dropped = set(range(len(items))) - set(kept)
        for idx in dropped:
            with pytest.raises(ValueError):
                beats, rr, amps = items[idx]
                extractor.extract_beats(beats, rr, amps)
