"""Unit tests for the respiration model and the shared seizure envelope."""

import numpy as np
import pytest

from repro.signals.respiration import (
    RespirationParams,
    generate_respiration,
    seizure_envelope,
)
from repro.signals.seizures import Seizure


class TestSeizureEnvelope:
    def setup_method(self):
        self.t = np.arange(0.0, 1200.0, 0.25)
        self.seizure = Seizure(onset_s=600.0, duration_s=60.0, preictal_s=60.0, postictal_s=120.0)

    def test_zero_without_seizures(self):
        assert np.all(seizure_envelope(self.t, []) == 0.0)

    def test_plateau_during_ictal_phase(self):
        env = seizure_envelope(self.t, [self.seizure])
        ictal = (self.t >= 600.0) & (self.t < 660.0)
        assert np.allclose(env[ictal], 1.0)

    def test_zero_far_from_seizure(self):
        env = seizure_envelope(self.t, [self.seizure])
        assert np.all(env[self.t < 500.0] == 0.0)

    def test_preictal_ramp_monotonic(self):
        env = seizure_envelope(self.t, [self.seizure])
        pre = (self.t >= 540.0) & (self.t < 600.0)
        assert np.all(np.diff(env[pre]) >= -1e-12)

    def test_postictal_decay(self):
        env = seizure_envelope(self.t, [self.seizure])
        post = (self.t >= 660.0) & (self.t < 780.0)
        assert np.all(np.diff(env[post]) <= 1e-12)

    def test_bounded_zero_one(self):
        env = seizure_envelope(self.t, [self.seizure])
        assert np.all(env >= 0.0) and np.all(env <= 1.0)

    def test_intensity_scales_plateau(self):
        weak = Seizure(onset_s=600.0, duration_s=60.0, intensity=0.5)
        env = seizure_envelope(self.t, [weak], use_intensity=True)
        ictal = (self.t >= 600.0) & (self.t < 660.0)
        assert np.allclose(env[ictal], 0.5)

    def test_intensity_ignored_by_default(self):
        weak = Seizure(onset_s=600.0, duration_s=60.0, intensity=0.5)
        env = seizure_envelope(self.t, [weak])
        ictal = (self.t >= 600.0) & (self.t < 660.0)
        assert np.allclose(env[ictal], 1.0)

    def test_two_seizures_take_maximum(self):
        other = Seizure(onset_s=300.0, duration_s=30.0)
        env = seizure_envelope(self.t, [self.seizure, other])
        assert env[np.searchsorted(self.t, 310.0)] == pytest.approx(1.0)
        assert env[np.searchsorted(self.t, 610.0)] == pytest.approx(1.0)


class TestGenerateRespiration:
    def _make(self, seizures=(), duration=900.0, seed=0, params=None):
        rng = np.random.default_rng(seed)
        return generate_respiration(duration, list(seizures), rng, params)

    def test_output_lengths_consistent(self):
        resp = self._make()
        assert resp.t.shape == resp.rate_hz.shape == resp.depth.shape == resp.waveform.shape

    def test_sampling_rate_respected(self):
        resp = self._make()
        assert resp.fs == pytest.approx(4.0)
        assert np.allclose(np.diff(resp.t), 0.25)

    def test_rate_within_physiological_bounds(self):
        resp = self._make()
        assert np.all(resp.rate_hz >= 0.1) and np.all(resp.rate_hz <= 0.8)

    def test_seizure_raises_breathing_rate(self):
        seizure = Seizure(onset_s=450.0, duration_s=90.0)
        resp = self._make([seizure])
        ictal = (resp.t >= 450.0) & (resp.t < 540.0)
        baseline = resp.t < 300.0
        assert resp.rate_hz[ictal].mean() > resp.rate_hz[baseline].mean()

    def test_seizure_reduces_breathing_depth(self):
        seizure = Seizure(onset_s=450.0, duration_s=90.0)
        resp = self._make([seizure])
        ictal = (resp.t >= 450.0) & (resp.t < 540.0)
        baseline = resp.t < 300.0
        assert resp.depth[ictal].mean() < resp.depth[baseline].mean()

    def test_value_at_interpolates_within_range(self):
        resp = self._make()
        samples = resp.value_at(np.array([10.0, 100.5, 899.0]))
        assert samples.shape == (3,)
        assert np.all(np.abs(samples) <= np.max(np.abs(resp.waveform)) + 1e-9)

    def test_waveform_oscillates(self):
        resp = self._make()
        # Roughly base_rate * duration breathing cycles → many sign changes.
        sign_changes = np.sum(np.diff(np.sign(resp.waveform)) != 0)
        assert sign_changes > 100

    def test_deterministic_given_seed(self):
        a = self._make(seed=3)
        b = self._make(seed=3)
        assert np.allclose(a.waveform, b.waveform)

    def test_arousals_raise_rate(self):
        arousal = Seizure(onset_s=450.0, duration_s=120.0, preictal_s=30.0, postictal_s=60.0)
        params = RespirationParams()
        quiet = self._make(duration=900.0, seed=5, params=params)
        rng = np.random.default_rng(5)
        active = generate_respiration(900.0, [], rng, params, arousals=[arousal])
        window = (quiet.t >= 450.0) & (quiet.t < 570.0)
        assert active.rate_hz[window].mean() > quiet.rate_hz[window].mean()
