"""``wire-version``: the binary frame layout only changes with its version.

:mod:`repro.serving.wire` promises that a frame's layout is fully determined
by the ``WIRE_VERSION`` byte in its header — that is what lets a decoder
reject frames from an incompatible build instead of misreading them.  The
promise dies silently if someone edits the ``struct`` format, the magic or
the dtype table while leaving ``WIRE_VERSION`` alone: old and new builds
then disagree about byte layout *within the same version number*.

This rule fingerprints each wire version in :data:`WIRE_REGISTRY` (header
format string, magic, dtype-code table).  Any module that declares a
``WIRE_VERSION`` is checked against the registry: an unregistered version,
or a layout that differs from the registered fingerprint, is an error whose
fix is a deliberate version bump plus a registry re-pin — never a quiet
layout edit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.framework import Finding, ModuleSource, Rule

__all__ = ["WireSpec", "WIRE_REGISTRY", "WireVersionRule"]


@dataclass(frozen=True)
class WireSpec:
    """Pinned layout fingerprint of one wire-format version.

    ``frame_kinds`` pins the frame-kind registry (the keys of the wire
    module's ``FRAME_KINDS`` dict) from version 2 on; versions that predate
    the typed frame protocol pin an empty tuple and skip the check.
    """

    header_format: str
    magic: bytes
    dtype_codes: Tuple[int, ...]
    frame_kinds: Tuple[int, ...] = ()


#: Committed wire-format fingerprints, one entry per ``WIRE_VERSION`` ever
#: shipped.  A layout change = new version byte = new entry; entries for
#: shipped versions are append-only.
WIRE_REGISTRY: Dict[int, WireSpec] = {
    1: WireSpec(
        header_format="<4sBBHIIIdI",
        magic=b"ECGC",
        dtype_codes=(0, 1, 2, 3),
    ),
    # v2 (federation): the v1 u16 reserved field became a frame-kind byte
    # plus a u8 reserved byte, and the frame-kind registry (DATA, HANDOFF,
    # STATE, ACK) joined the fingerprint.
    2: WireSpec(
        header_format="<4sBBBBIIIdI",
        magic=b"ECGC",
        dtype_codes=(0, 1, 2, 3),
        frame_kinds=(0, 1, 2, 3),
    ),
}


def _module_assignments(tree: ast.Module) -> Dict[str, ast.expr]:
    """Module-level ``NAME = <expr>`` / ``NAME: T = <expr>`` values."""
    values: Dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                values[target.id] = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and isinstance(node.target, ast.Name)
        ):
            values[node.target.id] = node.value
    return values


def _struct_format_literal(node: ast.expr) -> Optional[str]:
    """The literal format string of a ``struct.Struct("...")`` call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "Struct"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


def _int_literal_keys(node: ast.expr) -> Optional[Tuple[int, ...]]:
    """The integer keys of a dict literal, in declaration order."""
    if not isinstance(node, ast.Dict):
        return None
    keys = []
    for key in node.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, int)):
            return None
        keys.append(key.value)
    return tuple(keys)


class WireVersionRule(Rule):
    """The frame layout constants must match their registered version."""

    rule_id = "wire-version"
    description = (
        "struct header format, magic and dtype table must match the pinned "
        "fingerprint of the declared WIRE_VERSION"
    )
    invariant = (
        "versioned wire format: a frame's byte layout is fully determined by "
        "its version byte (ROADMAP: gateway transport is invisible in output)"
    )

    #: Names of the layout constants a wire module declares.
    version_name = "WIRE_VERSION"
    header_name = "HEADER"
    magic_name = "WIRE_MAGIC"
    dtypes_name = "DTYPE_CODES"
    kinds_name = "FRAME_KINDS"

    def __init__(self, registry: Optional[Dict[int, WireSpec]] = None) -> None:
        self.registry = WIRE_REGISTRY if registry is None else registry

    def applies_to(self, module: ModuleSource) -> bool:
        return self.version_name in module.text

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        assignments = _module_assignments(module.tree)
        version_node = assignments.get(self.version_name)
        if version_node is None:
            return []
        findings: List[Finding] = []
        repin_hint = (
            "changing the frame layout requires bumping %s and adding a new "
            "entry to repro.analysis.rules.wire_version.WIRE_REGISTRY"
            % self.version_name
        )
        if not (
            isinstance(version_node, ast.Constant)
            and isinstance(version_node.value, int)
        ):
            findings.append(
                self.finding(
                    module,
                    version_node,
                    "%s must be an integer literal" % self.version_name,
                    "the analyzer (and any reader of the module) must be able "
                    "to resolve the wire version statically",
                )
            )
            return findings
        version = version_node.value
        spec = self.registry.get(version)
        if spec is None:
            findings.append(
                self.finding(
                    module,
                    version_node,
                    "%s = %d has no pinned fingerprint in WIRE_REGISTRY"
                    % (self.version_name, version),
                    repin_hint,
                )
            )
            return findings

        header_node = assignments.get(self.header_name)
        if header_node is not None:
            header_format = _struct_format_literal(header_node)
            if header_format is None:
                findings.append(
                    self.finding(
                        module,
                        header_node,
                        "%s must be struct.Struct(<string literal>)" % self.header_name,
                        "a computed format string defeats static layout pinning",
                    )
                )
            elif header_format != spec.header_format:
                findings.append(
                    self.finding(
                        module,
                        header_node,
                        "header format %r differs from the %r pinned for wire "
                        "version %d" % (header_format, spec.header_format, version),
                        repin_hint,
                    )
                )

        magic_node = assignments.get(self.magic_name)
        if magic_node is not None:
            magic = magic_node.value if isinstance(magic_node, ast.Constant) else None
            if magic != spec.magic:
                findings.append(
                    self.finding(
                        module,
                        magic_node,
                        "%s differs from the %r pinned for wire version %d"
                        % (self.magic_name, spec.magic, version),
                        repin_hint,
                    )
                )

        dtypes_node = assignments.get(self.dtypes_name)
        if dtypes_node is not None:
            codes = _int_literal_keys(dtypes_node)
            if codes is None:
                findings.append(
                    self.finding(
                        module,
                        dtypes_node,
                        "%s must be a dict literal with integer-literal keys"
                        % self.dtypes_name,
                        "a computed dtype table defeats static layout pinning",
                    )
                )
            elif codes != spec.dtype_codes:
                findings.append(
                    self.finding(
                        module,
                        dtypes_node,
                        "dtype codes %s differ from the %s pinned for wire "
                        "version %d" % (list(codes), list(spec.dtype_codes), version),
                        repin_hint,
                    )
                )

        kinds_node = assignments.get(self.kinds_name)
        if kinds_node is not None and spec.frame_kinds:
            kinds = _int_literal_keys(kinds_node)
            if kinds is None:
                findings.append(
                    self.finding(
                        module,
                        kinds_node,
                        "%s must be a dict literal with integer-literal keys"
                        % self.kinds_name,
                        "a computed frame-kind registry defeats static layout "
                        "pinning",
                    )
                )
            elif kinds != spec.frame_kinds:
                findings.append(
                    self.finding(
                        module,
                        kinds_node,
                        "frame kinds %s differ from the %s pinned for wire "
                        "version %d — a new control frame is a layout change"
                        % (list(kinds), list(spec.frame_kinds), version),
                        repin_hint,
                    )
                )
        return findings
