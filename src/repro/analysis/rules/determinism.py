"""``determinism``: no ambient randomness or wall-clock reads in the library.

The reproduction's guarantees are replay-based: the golden trace pins
absolute numbers, the churn-parity harness replays identical streams through
different topologies, and CI re-runs everything derandomised.  All of that
assumes ``src/repro`` computes the same outputs from the same inputs — an
ambient ``np.random.rand()`` or ``time.time()`` buried in library code
breaks replay in ways a test only catches by luck.

The rule therefore rejects, anywhere it is pointed at:

* imports of the stdlib ``random`` module (global-state RNG);
* calls to the legacy NumPy global RNG (``np.random.seed`` /
  ``np.random.rand`` / ...);
* unseeded ``np.random.default_rng()`` — every generator must be
  constructed from an explicit seed that the caller controls;
* wall-clock reads: ``time.time`` / ``time.monotonic`` /
  ``time.perf_counter`` (and ``_ns`` variants), ``datetime.now`` /
  ``utcnow`` / ``today``.

The injectable entry points stay legal by construction: passing
``time.monotonic`` as a default ``clock=`` argument is a *reference*, not a
call, and calling an injected ``clock()`` / ``self._clock()`` never matches
the dotted blocklist.  Code with a genuine need (a CLI printing a timestamp)
documents it with ``# repro: allow[determinism]``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence

from repro.analysis.framework import Finding, ModuleSource, Rule

__all__ = ["DeterminismRule"]

#: Dotted call names that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Legacy NumPy global-RNG functions (module-level state, order-dependent).
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "uniform",
        "normal",
        "standard_normal",
        "choice",
        "shuffle",
        "permutation",
        "poisson",
        "binomial",
        "exponential",
        "beta",
        "gamma",
        "get_state",
        "set_state",
    }
)


def _dotted_name(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class DeterminismRule(Rule):
    """Reject ambient RNG state and wall-clock reads."""

    rule_id = "determinism"
    description = (
        "no stdlib random, legacy np.random globals, unseeded default_rng or "
        "wall-clock calls outside injectable clock/seed entry points"
    )
    invariant = (
        "replayability: identical inputs give identical outputs (ROADMAP: "
        "golden trace pins absolute numbers; parity fuzzing replays streams)"
    )

    def __init__(self, path_markers: Sequence[str] = ()) -> None:
        #: Optional path gate; empty means "every file I am pointed at".
        self.path_markers = tuple(path_markers)

    def applies_to(self, module: ModuleSource) -> bool:
        if not self.path_markers:
            return True
        return any(marker in module.path for marker in self.path_markers)

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        findings.append(
                            self.finding(
                                module,
                                node,
                                "import of the global-state stdlib random module",
                                "take an np.random.Generator (or a seed) as a "
                                "parameter instead of ambient RNG state",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "import from the global-state stdlib random module",
                            "take an np.random.Generator (or a seed) as a "
                            "parameter instead of ambient RNG state",
                        )
                    )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
        return findings

    def _check_call(self, module: ModuleSource, node: ast.Call) -> Iterable[Finding]:
        dotted = _dotted_name(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            yield self.finding(
                module,
                node,
                "wall-clock read %s() in library code" % dotted,
                "accept an injectable clock parameter (clock: Callable[[], "
                "float] = time.monotonic) and call that instead — a reference "
                "in a default argument is fine, an ambient call is not",
            )
            return
        if not isinstance(node.func, ast.Attribute):
            return
        owner = _dotted_name(node.func.value)
        if owner in ("np.random", "numpy.random"):
            if node.func.attr in _LEGACY_NP_RANDOM:
                yield self.finding(
                    module,
                    node,
                    "legacy global-RNG call %s.%s(...)" % (owner, node.func.attr),
                    "construct an explicit np.random.default_rng(seed) and "
                    "thread it through as a parameter",
                )
            elif node.func.attr == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "unseeded %s.default_rng() — entropy from the OS makes "
                    "runs unreproducible" % owner,
                    "require a seed (or a Generator) from the caller; only "
                    "explicit entry points may choose entropy, with a "
                    "documented # repro: allow[determinism]",
                )
