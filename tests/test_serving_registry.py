"""Per-patient model registry: heterogeneous fleet parity, grouped drains.

The contract under test extends the serving layer's headline guarantee to
heterogeneous fleets:

* a fleet serving every patient their *own* tailored backend (feature
  subset, SV budget, bit widths) produces decisions bit-identical to
  classifying each patient offline with that same backend (fixed-point
  scores exact);
* a registry holding a single shared model is decision-for-decision
  identical to the pre-registry shared-classifier fleet — across shard
  counts, executor backends and the TCP gateway path;
* the group-by-model drain emits decisions in exactly the same
  :func:`~repro.serving.fleet.decision_sort_key` order as a single-model
  drain over the same queue, for random model assignments and shard counts
  (hypothesis-fuzzed).
"""

import asyncio
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_point import DesignPoint
from repro.quant import QuantizationConfig, QuantizedSVM, QuantizedSVMBackend
from repro.serving import (
    IngestGateway,
    ModelRegistry,
    MonitorFleet,
    PendingWindow,
    ShardedFleet,
    StreamingMonitor,
    backend_from_design_point,
    backend_label,
    classify_grouped,
    classify_windows,
    decision_sort_key,
    encode_chunk,
)
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import synthesize_ecg
from repro.svm import FloatSVMBackend

FS = 128.0

#: 4-patient cohort (one ~17-minute session each) for the fleet parity tests.
REGISTRY_COHORT = CohortParams(
    n_patients=4,
    n_sessions=4,
    session_duration_s=1000.0,
    total_seizures=4,
    seed=31,
)


def _design_point(name, n_features, n_sv, feature_bits, coeff_bits, **extras):
    """A design point carrying only the configuration the registry needs."""
    return DesignPoint(
        name=name,
        n_features=n_features,
        n_support_vectors=n_sv,
        feature_bits=feature_bits,
        coeff_bits=coeff_bits,
        sensitivity=float("nan"),
        specificity=float("nan"),
        gm=float("nan"),
        energy_nj=0.0,
        area_mm2=0.0,
        extras=dict(extras),
    )


@pytest.fixture(scope="module")
def fleet_streams():
    """Per-patient raw ECG chunk streams for the heterogeneous parity tests."""
    cohort = generate_cohort(REGISTRY_COHORT)
    rng = np.random.default_rng(13)
    streams = {}
    for recording in cohort.recordings:
        ecg = synthesize_ecg(
            recording.beat_times_s, recording.duration_s, recording.respiration, rng
        )
        streams[recording.patient_id] = [
            ecg.ecg_mv[lo : lo + 4100] for lo in range(0, ecg.ecg_mv.size, 4100)
        ]
    return streams


@pytest.fixture(scope="module")
def q915(quadratic_model):
    return QuantizedSVM(
        quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15)
    ).as_backend()


@pytest.fixture(scope="module")
def q1218(quadratic_model):
    return QuantizedSVM(
        quadratic_model, QuantizationConfig(feature_bits=12, coeff_bits=18)
    ).as_backend()


@pytest.fixture(scope="module")
def lean_backend(feature_matrix):
    """A reduced design point (feature subset + SV budget + 8/12 bits),
    trained through the registry's design-point builder."""
    point = _design_point("lean-30f", n_features=30, n_sv=24, feature_bits=8, coeff_bits=12)
    return backend_from_design_point(point, feature_matrix)


@pytest.fixture(scope="module")
def het_registry(q915, q1218, lean_backend, quadratic_model):
    """Patients 1-3 run tailored backends; everyone else gets the default."""
    registry = ModelRegistry(default=q915)
    registry.register(1, quadratic_model.as_backend())
    registry.register(2, q1218)
    registry.register(3, lean_backend)
    return registry


# ---------------------------------------------------------------------------
# Registry unit behaviour
# ---------------------------------------------------------------------------


class TestModelRegistry:
    def test_default_fallback_and_strict_lookup(self, q915, q1218):
        registry = ModelRegistry(default=q915)
        registry.register(7, q1218)
        assert registry.backend_for(7) is q1218
        assert registry.backend_for(8) is q915
        strict = ModelRegistry()
        with pytest.raises(KeyError, match="no default"):
            strict.backend_for(8)
        with pytest.raises(KeyError, match="no default"):
            strict.version_of(8)

    def test_epoch_bumps_and_version_stamps(self, q915, q1218):
        registry = ModelRegistry()
        assert registry.epoch == 0
        registry.set_default(q915)
        assert registry.epoch == 1
        registry.register(3, q1218)
        assert registry.epoch == 2
        assert registry.version_of(3) == 2
        assert registry.version_of(99) == 1  # served by the default
        # Hot swap: the entry is replaced atomically and re-stamped.
        registry.register(3, q915)
        assert registry.epoch == 3
        assert registry.version_of(3) == 3
        assert registry.backend_for(3) is q915
        registry.unregister(3)
        assert registry.epoch == 4
        assert registry.backend_for(3) is q915  # back on the default
        with pytest.raises(KeyError):
            registry.unregister(3)

    def test_membership_and_labels(self, q915, q1218):
        registry = ModelRegistry.from_models({1: q1218}, default=q915)
        assert registry.has_model(1) and 1 in registry
        assert not registry.has_model(2)
        assert registry.patient_ids == [1] and len(registry) == 1
        assert registry.label_for(1) == "q12/18[f=53,sv=%d]" % q1218.n_support_vectors
        assert registry.label_for(2).startswith("q9/15[")
        assert set(registry.backends()) == {q915, q1218}
        assert "epoch=" in repr(registry)

    def test_backend_label_fallback(self, quadratic_model):
        assert backend_label(quadratic_model) == "SVMModel"
        assert backend_label(quadratic_model.as_backend()).startswith("float64[")


class TestDesignPointJson:
    def test_round_trip(self):
        point = _design_point(
            "paper-9/15", n_features=30, n_sv=68.5, feature_bits=9, coeff_bits=15, stage=3.0
        )
        point.sensitivity, point.specificity, point.gm = 0.85, 0.9, 0.874
        point.energy_nj, point.area_mm2 = 12.5, 0.031
        restored = DesignPoint.from_json(point.to_json(indent=2))
        assert restored == point
        assert restored.extras == {"stage": 3.0}

    def test_nan_metrics_emit_strict_json(self):
        """Unevaluated points carry NaN metrics; the payload must still be
        RFC-8259 JSON (``null``, never the ``NaN`` literal non-Python
        parsers reject) and read back as NaN."""
        point = _design_point("pre-eval", 30, 24, 9, 15, odd=float("nan"))
        payload = point.to_json()
        assert "NaN" not in payload and '"gm": null' in payload
        restored = DesignPoint.from_json(payload)
        assert math.isnan(restored.gm)
        assert math.isnan(restored.sensitivity) and math.isnan(restored.specificity)
        assert math.isnan(restored.extras["odd"])
        assert restored.name == point.name and restored.feature_bits == 9

    def test_rejects_malformed_payloads(self):
        point = _design_point("p", 10, 8, 9, 15)
        with pytest.raises(ValueError, match="unknown"):
            DesignPoint.from_json(point.to_json().replace('"name"', '"nom"'))
        with pytest.raises(ValueError, match="missing"):
            DesignPoint.from_json('{"name": "p"}')
        with pytest.raises(ValueError, match="object"):
            DesignPoint.from_json("[1, 2]")


# ---------------------------------------------------------------------------
# Backend adapters
# ---------------------------------------------------------------------------


class TestBackendAdapters:
    def test_full_width_adapter_is_transparent(self, quadratic_model, feature_matrix):
        backend = FloatSVMBackend(quadratic_model)
        X = feature_matrix.X
        assert np.array_equal(backend.predict(X), quadratic_model.predict(X))
        scores, labels = backend.scores_and_labels(X)
        ref_scores, ref_labels = quadratic_model.scores_and_labels(X)
        assert np.array_equal(scores, ref_scores) and np.array_equal(labels, ref_labels)
        assert backend.n_features == quadratic_model.n_features
        assert backend.n_support_vectors == quadratic_model.n_support_vectors

    def test_feature_projection_equals_manual_slice(self, feature_matrix):
        from repro.svm.model import train_svm

        indices = [0, 5, 11, 17, 23, 31, 40, 52]
        sliced = feature_matrix.X[:, indices]
        model = train_svm(sliced, feature_matrix.y)
        quantized = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        backend = QuantizedSVMBackend(quantized, feature_indices=indices)
        scores, labels = backend.scores_and_labels(feature_matrix.X)
        ref_scores, ref_labels = quantized.scores_and_labels(sliced)
        assert np.array_equal(scores, ref_scores) and np.array_equal(labels, ref_labels)
        assert np.array_equal(
            backend.decision_function(feature_matrix.X), quantized.decision_function(sliced)
        )

    def test_projection_validation(self, quadratic_model, feature_matrix):
        with pytest.raises(ValueError, match="selects 2 columns"):
            FloatSVMBackend(quadratic_model, feature_indices=[0, 1])
        quantized = QuantizedSVM(quadratic_model, QuantizationConfig())
        backend = QuantizedSVMBackend(
            quantized, feature_indices=list(range(52, 52 + quadratic_model.n_features))
        )
        with pytest.raises(ValueError, match="only"):
            backend.predict(feature_matrix.X)

    def test_describe_and_name_override(self, quadratic_model):
        quantized = QuantizedSVM(
            quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15)
        )
        assert quantized.as_backend().describe() == "q9/15[f=%d,sv=%d]" % (
            quantized.n_features,
            quantized.n_support_vectors,
        )
        assert quantized.as_backend(name="paper-point").describe() == "paper-point"
        assert "paper-point" in repr(quantized.as_backend(name="paper-point"))
        named = quadratic_model.as_backend(name="reference")
        assert named.describe() == "reference" and "reference" in repr(named)

    def test_grouped_classify_resolves_before_classifying(self, q915, feature_matrix):
        strict = ModelRegistry(models={0: q915})
        pending = [
            PendingWindow(0, 0.0, 180.0, 100, feature_matrix.X[0]),
            PendingWindow(5, 0.0, 180.0, 100, feature_matrix.X[1]),
        ]
        with pytest.raises(KeyError, match="patient 5"):
            classify_grouped(strict.backend_for, pending)


# ---------------------------------------------------------------------------
# Design-point builders
# ---------------------------------------------------------------------------


class TestDesignPointBuilders:
    def test_float_reference_point_builds_float_backend(self, feature_matrix):
        point = _design_point("baseline-64bit", feature_matrix.n_features, 1, 64, 64)
        backend = backend_from_design_point(point, feature_matrix)
        assert isinstance(backend, FloatSVMBackend)
        assert backend.describe() == "baseline-64bit"
        assert backend.feature_indices is None

    def test_reduced_point_projects_and_budgets(self, lean_backend, feature_matrix):
        assert isinstance(lean_backend, QuantizedSVMBackend)
        assert lean_backend.n_features == 30
        assert lean_backend.n_support_vectors <= 24
        assert lean_backend.config.feature_bits == 8
        assert lean_backend.config.coeff_bits == 12
        # The backend consumes *full-width* fleet vectors.
        scores, labels = lean_backend.scores_and_labels(feature_matrix.X)
        assert scores.shape[0] == feature_matrix.n_samples
        assert set(np.unique(labels)) <= {-1, 1}

    def test_quantization_template_knobs_are_kept(self, feature_matrix):
        template = QuantizationConfig(
            truncate_after_dot=6, truncate_after_square=4, per_feature_scaling=False
        )
        point = _design_point("custom", feature_matrix.n_features, 16, 10, 14)
        backend = backend_from_design_point(point, feature_matrix, quantization=template)
        assert backend.config.feature_bits == 10 and backend.config.coeff_bits == 14
        assert backend.config.truncate_after_dot == 6
        assert backend.config.truncate_after_square == 4
        assert not backend.config.per_feature_scaling

    def test_invalid_feature_count_rejected(self, feature_matrix):
        point = _design_point("too-wide", feature_matrix.n_features + 1, 16, 9, 15)
        with pytest.raises(ValueError, match="wants"):
            backend_from_design_point(point, feature_matrix)

    def test_from_design_points_shares_backends_per_configuration(self, feature_matrix):
        paper = _design_point("paper-9/15", 30, 24, 9, 15)
        renamed = _design_point("paper-9/15-bis", 30, 24, 9, 15)
        wide = _design_point("wide-12/18", feature_matrix.n_features, 24, 12, 18)
        registry = ModelRegistry.from_design_points(
            {0: paper, 1: paper, 2: wide, 3: renamed}, feature_matrix, default=paper
        )
        # One trained backend per distinct design point, shared by patients.
        assert registry.backend_for(0) is registry.backend_for(1)
        assert registry.backend_for(0) is registry.default
        assert registry.backend_for(2) is not registry.backend_for(0)
        assert registry.label_for(0) == "paper-9/15"
        assert registry.label_for(2) == "wide-12/18"
        # A same-configuration point under a different *name* gets its own
        # backend: the per-model drain ledger must never misattribute labels.
        assert registry.backend_for(3) is not registry.backend_for(0)
        assert registry.label_for(3) == "paper-9/15-bis"
        # Round trip through JSON persistence builds the same configuration.
        reloaded = DesignPoint.from_json(wide.to_json())
        rebuilt = backend_from_design_point(reloaded, feature_matrix)
        scores, _ = rebuilt.scores_and_labels(feature_matrix.X)
        ref_scores, _ = registry.backend_for(2).scores_and_labels(feature_matrix.X)
        assert np.array_equal(scores, ref_scores)


# ---------------------------------------------------------------------------
# Heterogeneous fleet parity (full DSP path)
# ---------------------------------------------------------------------------


def _offline_reference(streams, fs, registry):
    """Per-patient offline classification, each patient with their own model."""
    decisions = []
    for patient_id, chunks in streams.items():
        monitor = StreamingMonitor(patient_id, fs)
        pending = []
        for chunk in chunks:
            pending.extend(monitor.push(chunk))
        pending.extend(monitor.finish())
        decisions.extend(classify_windows(registry.backend_for(patient_id), pending))
    decisions.sort(key=decision_sort_key)
    return decisions


def _assert_identical(reference, candidate, *, float_patients=()):
    assert len(candidate) == len(reference) > 0
    for expected, got in zip(reference, candidate):
        assert got.patient_id == expected.patient_id
        assert got.start_s == expected.start_s
        assert got.end_s == expected.end_s
        assert got.usable == expected.usable
        assert got.alarm == expected.alarm
        if expected.score is None:
            assert got.score is None
        elif got.patient_id in float_patients:
            # Float scores: BLAS may dispatch differently per batch shape.
            assert math.isclose(got.score, expected.score, rel_tol=1e-9, abs_tol=1e-12)
        else:
            assert got.score == expected.score  # fixed point: bit identical


class TestHeterogeneousFleetParity:
    def test_fleet_matches_per_patient_offline(self, fleet_streams, het_registry):
        reference = _offline_reference(fleet_streams, FS, het_registry)
        fleet = MonitorFleet(het_registry, FS)
        decisions = sorted(fleet.run(fleet_streams), key=decision_sort_key)
        _assert_identical(reference, decisions, float_patients={1})
        # All four models actually classified something.
        assert {het_registry.label_for(d.patient_id) for d in decisions if d.usable} == {
            backend_label(het_registry.backend_for(pid)) for pid in fleet_streams
        }

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_heterogeneous_parity(self, fleet_streams, het_registry, n_shards):
        reference = _offline_reference(fleet_streams, FS, het_registry)
        sharded = ShardedFleet(het_registry, FS, n_shards=n_shards)
        decisions = sharded.run(fleet_streams, drain_every=4)
        _assert_identical(reference, decisions, float_patients={1})

    def test_single_model_registry_matches_plain_fleet(self, fleet_streams, q915):
        plain = MonitorFleet(q915, FS).run(fleet_streams)
        wrapped = MonitorFleet(ModelRegistry(default=q915), FS).run(fleet_streams)
        assert wrapped == plain  # decision-for-decision, scores bit-identical
        plain_sharded = ShardedFleet(q915, FS, n_shards=2).run(fleet_streams)
        wrapped_sharded = ShardedFleet(ModelRegistry(default=q915), FS, n_shards=2).run(
            fleet_streams
        )
        assert wrapped_sharded == plain_sharded == plain

    def test_hot_swap_takes_effect_next_drain(self, q915, q1218, feature_matrix):
        fleet = MonitorFleet(ModelRegistry(default=q915), FS)
        window = PendingWindow(4, 0.0, 180.0, 100, feature_matrix.X[0])
        fleet.enqueue([window])
        before = fleet.drain()[0]
        epoch = fleet.register_model(4, q1218)
        assert fleet.registry.version_of(4) == epoch
        fleet.enqueue([PendingWindow(4, 180.0, 360.0, 100, feature_matrix.X[0])])
        after = fleet.drain()[0]
        ref_before = float(q915.scores_and_labels(feature_matrix.X[:1])[0][0])
        ref_after = float(q1218.scores_and_labels(feature_matrix.X[:1])[0][0])
        assert before.score == ref_before
        assert after.score == ref_after
        assert fleet.model_label_for(4).startswith("q12/18[")


class TestGatewayHeterogeneousParity:
    """The TCP front door preserves heterogeneous parity (quantized backends:
    bit-exact regardless of how asyncio interleaves the node uplinks)."""

    def _registry(self, q915, q1218, lean_backend):
        return ModelRegistry(default=q915, models={1: q1218, 3: lean_backend})

    def test_tcp_gateway_matches_offline(self, fleet_streams, q915, q1218, lean_backend):
        registry = self._registry(q915, q1218, lean_backend)
        reference = _offline_reference(fleet_streams, FS, registry)

        async def run_gateway():
            fleet = ShardedFleet(registry, FS, n_shards=2)
            gateway = IngestGateway(fleet, queue_depth=8, backpressure="block")
            host, port = await gateway.serve()

            async def node(patient_id, chunks):
                _, writer = await asyncio.open_connection(host, port)
                for seq, chunk in enumerate(chunks):
                    writer.write(encode_chunk(patient_id, seq, FS, chunk))
                    await writer.drain()
                writer.close()
                await writer.wait_closed()

            await asyncio.gather(
                *[node(pid, chunks) for pid, chunks in sorted(fleet_streams.items())]
            )
            decisions = await gateway.stop()
            return decisions, gateway.stats()

        decisions, stats = asyncio.run(run_gateway())
        _assert_identical(reference, decisions)
        # Per-model drain counts: every decision attributed to its model.
        expected = {}
        for decision in decisions:
            label = registry.label_for(decision.patient_id)
            expected[label] = expected.get(label, 0) + 1
        assert stats.drained_by_model == expected
        assert sum(stats.drained_by_model.values()) == len(decisions)


# ---------------------------------------------------------------------------
# Property: group-by-model drains preserve the canonical decision order
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def quantized_trio(quadratic_model):
    return [
        QuantizedSVM(quadratic_model, config).as_backend()
        for config in (
            QuantizationConfig(feature_bits=9, coeff_bits=15),
            QuantizationConfig(feature_bits=12, coeff_bits=18),
            QuantizationConfig(feature_bits=8, coeff_bits=12),
        )
    ]


class TestGroupedDrainOrderProperty:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n_shards=st.sampled_from([1, 2, 3, 4]))
    def test_grouped_drain_emits_single_model_order(
        self, quantized_trio, feature_matrix, seed, n_shards
    ):
        rng = np.random.default_rng(seed)
        n_windows = int(rng.integers(1, 50))
        pending = []
        for i in range(n_windows):
            usable = rng.random() > 0.15
            pending.append(
                PendingWindow(
                    patient_id=int(rng.integers(0, 12)),
                    start_s=180.0 * float(rng.integers(0, 8)),
                    end_s=180.0 * float(rng.integers(0, 8)) + 180.0,
                    n_beats=120,
                    features=feature_matrix.X[int(rng.integers(0, feature_matrix.n_samples))]
                    if usable
                    else None,
                )
            )
        assignment = {pid: quantized_trio[int(rng.integers(0, 3))] for pid in range(12)}
        registry = ModelRegistry(models=assignment)
        shared = quantized_trio[0]

        def keys(decisions):
            return [(d.start_s, d.patient_id, d.end_s, d.usable) for d in decisions]

        # Unsharded: the grouped drain must emit the queue's arrival order,
        # exactly as the single-model drain does.
        het, single = MonitorFleet(registry, FS), MonitorFleet(shared, FS)
        het.enqueue(pending)
        single.enqueue(pending)
        het_decisions = het.drain()
        assert keys(het_decisions) == keys(single.drain())

        # Sharded, any shard count: both canonically sorted, same sequence.
        het_sharded = ShardedFleet(registry, FS, n_shards=n_shards)
        single_sharded = ShardedFleet(shared, FS, n_shards=n_shards)
        het_sharded.enqueue(pending)
        single_sharded.enqueue(pending)
        assert keys(het_sharded.drain()) == keys(single_sharded.drain())

        # And the heterogeneous decisions match each window's own model,
        # bit-exactly (fixed-point pipelines are batch-composition invariant).
        for window, decision in zip(pending, het_decisions):
            if not window.usable:
                assert decision.score is None and not decision.alarm
                continue
            backend = registry.backend_for(window.patient_id)
            scores, labels = backend.scores_and_labels(window.features.reshape(1, -1))
            assert decision.score == float(scores[0])
            assert decision.alarm == (int(labels[0]) == 1)
