"""Unit tests for EDR extraction and the AR / PSD feature groups."""

import numpy as np
import pytest

from repro.features.ar_features import AR_FEATURE_NAMES, AR_ORDER, ar_features
from repro.features.edr import EDR_FS, edr_series_from_amplitudes, edr_series_from_ecg
from repro.features.psd_features import PSD_BANDS, PSD_FEATURE_NAMES, psd_features
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg
from repro.signals.respiration import generate_respiration
from repro.signals.rr_model import RRModelParams, generate_rr_series


def _synthetic_beats(duration=300.0, resp_rate=0.25, hr_bpm=72.0, modulation=0.15, seed=0):
    """Beat times with respiration-modulated amplitudes at a known rate."""
    rng = np.random.default_rng(seed)
    rr = 60.0 / hr_bpm
    beat_times = np.arange(0.0, duration, rr)
    amplitudes = 1.0 + modulation * np.sin(2 * np.pi * resp_rate * beat_times)
    amplitudes += 0.01 * rng.standard_normal(beat_times.size)
    return beat_times, amplitudes


class TestEDRFromAmplitudes:
    def test_uniform_sampling(self):
        beats, amps = _synthetic_beats()
        t, edr = edr_series_from_amplitudes(beats, amps)
        assert np.allclose(np.diff(t), 1.0 / EDR_FS)
        assert t.shape == edr.shape

    def test_zero_mean_after_detrending(self):
        beats, amps = _synthetic_beats()
        _, edr = edr_series_from_amplitudes(beats, amps)
        assert abs(np.mean(edr)) < 0.02

    def test_respiratory_frequency_recovered(self):
        beats, amps = _synthetic_beats(resp_rate=0.3)
        _, edr = edr_series_from_amplitudes(beats, amps)
        spectrum = np.abs(np.fft.rfft(edr * np.hanning(edr.size)))
        freqs = np.fft.rfftfreq(edr.size, d=1.0 / EDR_FS)
        assert freqs[np.argmax(spectrum)] == pytest.approx(0.3, abs=0.03)

    def test_too_few_beats_raises(self):
        with pytest.raises(ValueError):
            edr_series_from_amplitudes(np.array([0.0, 1.0]), np.array([1.0, 1.0]))


class TestEDRFromECG:
    def test_end_to_end_respiration_recovery(self):
        rng = np.random.default_rng(17)
        duration = 240.0
        respiration = generate_respiration(duration, [], rng)
        series = generate_rr_series(duration, [], respiration, rng, RRModelParams(ectopic_rate=0.0))
        ecg = synthesize_ecg(
            series.beat_times_s, duration, respiration, rng, ECGWaveformParams(noise_mv=0.01)
        )
        t, edr = edr_series_from_ecg(ecg.ecg_mv, ecg.fs)
        # The EDR spectrum should peak in the respiratory band (0.15–0.45 Hz).
        spectrum = np.abs(np.fft.rfft(edr * np.hanning(edr.size)))
        freqs = np.fft.rfftfreq(edr.size, d=1.0 / EDR_FS)
        peak = freqs[np.argmax(spectrum[1:]) + 1]
        assert 0.1 <= peak <= 0.55

    def test_flat_signal_raises(self):
        with pytest.raises(ValueError):
            edr_series_from_ecg(np.zeros(128 * 30), 128.0)


class TestARFeatures:
    def test_length_and_order(self):
        rng = np.random.default_rng(2)
        edr = np.sin(2 * np.pi * 0.25 * np.arange(0, 180, 0.25)) + 0.05 * rng.standard_normal(720)
        vec = ar_features(edr)
        assert vec.shape == (AR_ORDER,) == (len(AR_FEATURE_NAMES),) == (9,)

    def test_dominant_pole_tracks_breathing_rate(self):
        t = np.arange(0, 300, 1.0 / EDR_FS)
        rng = np.random.default_rng(3)
        slow = np.sin(2 * np.pi * 0.2 * t) + 0.05 * rng.standard_normal(t.size)
        fast = np.sin(2 * np.pi * 0.45 * t) + 0.05 * rng.standard_normal(t.size)
        # a1 ≈ 2 cos(2π f / fs): decreases as the breathing rate rises.
        assert ar_features(slow)[0] > ar_features(fast)[0]

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            ar_features(np.zeros(AR_ORDER))

    def test_finite_for_noise_input(self):
        edr = np.random.default_rng(4).standard_normal(400)
        assert np.all(np.isfinite(ar_features(edr)))


class TestPSDFeatures:
    def test_length_and_band_count(self):
        assert len(PSD_BANDS) == len(PSD_FEATURE_NAMES) == 29
        edr = np.sin(2 * np.pi * 0.25 * np.arange(0, 180, 0.25))
        assert psd_features(edr).shape == (29,)

    def test_normalised_to_unit_sum(self):
        rng = np.random.default_rng(5)
        edr = rng.standard_normal(720)
        vec = psd_features(edr)
        assert vec.sum() == pytest.approx(1.0, rel=1e-6)
        assert np.all(vec >= 0.0)

    def test_power_concentrated_in_breathing_band(self):
        t = np.arange(0, 300, 1.0 / EDR_FS)
        edr = np.sin(2 * np.pi * 0.27 * t)
        vec = psd_features(edr)
        # 0.27 Hz falls in band index 5 (0.25–0.30 Hz).
        assert np.argmax(vec) == 5

    def test_band_shift_with_breathing_rate(self):
        t = np.arange(0, 300, 1.0 / EDR_FS)
        slow = psd_features(np.sin(2 * np.pi * 0.2 * t))
        fast = psd_features(np.sin(2 * np.pi * 0.4 * t))
        assert np.argmax(fast) > np.argmax(slow)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            psd_features(np.zeros(8))

    def test_bands_are_contiguous(self):
        for (lo1, hi1), (lo2, _) in zip(PSD_BANDS[:-1], PSD_BANDS[1:]):
            assert hi1 == pytest.approx(lo2)
