"""Tests for the streaming / batched serving engine (:mod:`repro.serving`).

Covers the incremental windower, the single-patient monitor, the fleet's
batched drain — including the acceptance requirement that batched fixed-point
predictions are bit-identical to a per-window loop on a 4-patient cohort —
and float-vs-quantized parity of the batched inference path.
"""

import numpy as np
import pytest

from repro.features.catalog import N_FEATURES
from repro.features.extractor import FeatureExtractor
from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    AnyOf,
    ChunkCountPolicy,
    LatencyPolicy,
    MonitorFleet,
    PendingWindow,
    PendingWindowPolicy,
    StreamingMonitor,
    classify_windows,
)
from repro.serving.scheduler import DrainStats, merge_stats
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import synthesize_ecg
from repro.signals.windows import StreamingWindower, WindowingParams

FS = 128.0

#: 4-patient cohort (one ~17-minute session each) for the fleet parity tests.
FLEET_COHORT = CohortParams(
    n_patients=4,
    n_sessions=4,
    session_duration_s=1000.0,
    total_seizures=4,
    seed=11,
)


@pytest.fixture(scope="module")
def fleet_streams():
    """Per-patient raw ECG chunk streams for the fleet tests."""
    cohort = generate_cohort(FLEET_COHORT)
    rng = np.random.default_rng(5)
    streams = {}
    for recording in cohort.recordings:
        ecg = synthesize_ecg(
            recording.beat_times_s, recording.duration_s, recording.respiration, rng
        )
        streams[recording.patient_id] = [
            ecg.ecg_mv[lo : lo + 3700] for lo in range(0, ecg.ecg_mv.size, 3700)
        ]
    return streams


@pytest.fixture(scope="module")
def quantized_detector(quadratic_model):
    return QuantizedSVM(quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15))


class TestStreamingWindower:
    def test_boundary_rr_included(self):
        windower = StreamingWindower(WindowingParams(window_s=10.0, step_s=10.0))
        beats = np.arange(0.5, 24.6, 1.0)
        out = windower.push(beats, np.ones_like(beats))
        assert len(out) == 2
        first = out[0]
        assert first.start_s == 0.0 and first.end_s == 10.0
        assert first.n_beats == 10
        # RR intervals whose starting beat is inside the window, including the
        # one spanning the window boundary.
        assert first.rr_s.shape[0] == 10
        assert np.allclose(first.rr_s, 1.0)
        assert first.r_amplitudes_mv.shape[0] == first.n_beats

    def test_incremental_pushes_equal_one_shot(self):
        params = WindowingParams(window_s=10.0, step_s=10.0)
        beats = np.sort(np.random.default_rng(2).uniform(0.0, 55.0, size=60))
        amplitudes = np.linspace(1.0, 2.0, beats.size)

        one_shot = StreamingWindower(params).push(beats, amplitudes)
        incremental = []
        windower = StreamingWindower(params)
        for lo in range(0, beats.size, 7):
            incremental.extend(
                windower.push(beats[lo : lo + 7], amplitudes[lo : lo + 7])
            )
        assert len(one_shot) == len(incremental)
        for a, b in zip(one_shot, incremental):
            assert a.start_s == b.start_s and a.end_s == b.end_s
            assert np.array_equal(a.beat_times_s, b.beat_times_s)
            assert np.array_equal(a.rr_s, b.rr_s)
            assert np.array_equal(a.r_amplitudes_mv, b.r_amplitudes_mv)

    def test_clock_closes_beatless_window(self):
        windower = StreamingWindower(WindowingParams(window_s=10.0, step_s=10.0))
        assert windower.push(np.empty(0), np.empty(0)) == []
        # Clock far past the first window end: the empty window is emitted.
        out = windower.advance(10.0 + windower.boundary_grace_s)
        assert len(out) == 1
        assert out[0].n_beats == 0

    def test_flush_drops_trailing_partial_window(self):
        windower = StreamingWindower(WindowingParams(window_s=10.0, step_s=10.0))
        beats = np.arange(0.5, 14.0, 1.0)
        emitted = windower.push(beats, np.ones_like(beats))
        emitted += windower.flush()
        # Only [0, 10) has fully elapsed; [10, 20) is partial and dropped.
        assert [w.start_s for w in emitted] == [0.0]

    def test_out_of_order_beats_rejected(self):
        windower = StreamingWindower()
        windower.push(np.array([5.0, 6.0]), np.ones(2))
        with pytest.raises(ValueError):
            windower.push(np.array([4.0]), np.ones(1))

    def test_overlapping_stride(self):
        windower = StreamingWindower(WindowingParams(window_s=10.0, step_s=5.0))
        beats = np.arange(0.25, 30.0, 0.5)
        out = windower.push(beats, np.ones_like(beats))
        starts = [w.start_s for w in out]
        assert starts == [0.0, 5.0, 10.0, 15.0]
        assert all(w.end_s - w.start_s == 10.0 for w in out)
        assert all(w.n_beats == 20 for w in out)


class TestFeatureExtractorBatch:
    def test_batch_matches_per_window_and_skips_bad(self):
        rng = np.random.default_rng(9)
        rr_good = 0.8 + 0.05 * rng.standard_normal(220)
        beats_good = np.cumsum(rr_good)
        amps_good = 1.0 + 0.1 * np.sin(0.3 * beats_good)
        good = (beats_good, np.diff(np.append(beats_good, beats_good[-1] + 0.8)), amps_good)
        bad = (beats_good[:5], np.diff(beats_good[:5]), amps_good[:5])

        extractor = FeatureExtractor()
        X, kept = extractor.extract_batch([good, bad, good])
        assert kept == [0, 2]
        assert X.shape == (2, N_FEATURES)
        assert np.array_equal(X[0], extractor.extract_beats(*good))
        assert np.array_equal(X[0], X[1])

    def test_batch_all_unusable(self):
        extractor = FeatureExtractor()
        X, kept = extractor.extract_batch([(np.empty(0), np.empty(0), np.empty(0))])
        assert X.shape == (0, N_FEATURES) and kept == []


class TestClassifyWindows:
    def test_unusable_windows_never_alarm(self, quantized_detector):
        pending = [
            PendingWindow(patient_id=1, start_s=0.0, end_s=180.0, n_beats=3, features=None)
        ]
        decisions = classify_windows(quantized_detector, pending)
        assert len(decisions) == 1
        assert not decisions[0].usable and not decisions[0].alarm
        assert decisions[0].score is None

    def test_empty_batch(self, quantized_detector):
        assert classify_windows(quantized_detector, []) == []


class TestStreamingMonitor:
    def test_monitor_emits_expected_window_grid(self, fleet_streams, quantized_detector):
        patient_id, chunks = next(iter(fleet_streams.items()))
        monitor = StreamingMonitor(patient_id, FS, classifier=quantized_detector)
        decisions = []
        for chunk in chunks:
            decisions.extend(monitor.process(chunk))
        decisions.extend(monitor.finish_and_classify())
        # 1000 s of signal -> five complete 180 s windows.
        assert [d.start_s for d in decisions] == [0.0, 180.0, 360.0, 540.0, 720.0]
        assert all(d.end_s - d.start_s == 180.0 for d in decisions)
        assert all(d.usable for d in decisions)
        assert all(d.score is not None for d in decisions)
        assert monitor.n_windows == 5 and monitor.n_usable_windows == 5

    def test_monitor_without_classifier_rejects_process(self):
        monitor = StreamingMonitor(0, FS)
        with pytest.raises(ValueError):
            monitor.process(np.zeros(100))


class TestMonitorFleetParity:
    def _per_window_loop(self, streams, classifier):
        """The naive baseline: independent monitors, one predict per window."""
        predictions = {}
        for patient_id, chunks in streams.items():
            monitor = StreamingMonitor(patient_id, FS)
            pending = []
            for chunk in chunks:
                pending.extend(monitor.push(chunk))
            pending.extend(monitor.finish())
            for window in pending:
                if window.usable:
                    label = int(classifier.predict(window.features.reshape(1, -1))[0])
                    predictions[(patient_id, window.start_s)] = label
        return predictions

    def test_quantized_batched_predictions_bit_identical(
        self, fleet_streams, quantized_detector
    ):
        assert len(fleet_streams) >= 4
        fleet = MonitorFleet(quantized_detector, FS)
        decisions = fleet.run(fleet_streams)
        loop = self._per_window_loop(fleet_streams, quantized_detector)
        usable = [d for d in decisions if d.usable]
        assert len(usable) == len(loop) > 0
        for decision in usable:
            expected = loop[(decision.patient_id, decision.start_s)]
            assert (1 if decision.alarm else -1) == expected

    def test_float_batched_predictions_match_loop(self, fleet_streams, quadratic_model):
        fleet = MonitorFleet(quadratic_model, FS)
        decisions = fleet.run(fleet_streams)
        loop = self._per_window_loop(fleet_streams, quadratic_model)
        usable = [d for d in decisions if d.usable]
        assert len(usable) == len(loop) > 0
        for decision in usable:
            assert (1 if decision.alarm else -1) == loop[(decision.patient_id, decision.start_s)]

    def test_float_vs_quantized_batched_agreement(
        self, fleet_streams, quadratic_model, quantized_detector
    ):
        """The 9/15-bit fixed-point fleet should agree with the float fleet on
        most windows (Figure 6's premise: near-baseline GM at 9/15 bits, with
        a few borderline windows allowed to flip)."""
        float_fleet = MonitorFleet(quadratic_model, FS)
        quant_fleet = MonitorFleet(quantized_detector, FS)
        float_decisions = {
            (d.patient_id, d.start_s): d.alarm for d in float_fleet.run(fleet_streams) if d.usable
        }
        quant_decisions = {
            (d.patient_id, d.start_s): d.alarm for d in quant_fleet.run(fleet_streams) if d.usable
        }
        assert set(float_decisions) == set(quant_decisions)
        agreement = np.mean(
            [float_decisions[key] == quant_decisions[key] for key in float_decisions]
        )
        assert agreement >= 0.75

    def test_interleaved_drains_equal_final_drain(self, fleet_streams, quantized_detector):
        fleet_a = MonitorFleet(quantized_detector, FS)
        fleet_b = MonitorFleet(quantized_detector, FS)
        a = fleet_a.run(fleet_streams, drain_every=3)
        b = fleet_b.run(fleet_streams)
        def key(d):
            return (d.patient_id, d.start_s, d.usable, d.alarm)

        assert sorted(map(key, a)) == sorted(map(key, b))

    def test_fleet_bookkeeping(self, quantized_detector):
        fleet = MonitorFleet(quantized_detector, FS)
        fleet.add_patient(3)
        with pytest.raises(KeyError):
            fleet.add_patient(3)
        assert fleet.patient_ids == [3]
        assert fleet.has_patient(3) and not fleet.has_patient(4)
        assert fleet.pending_count == 0
        assert fleet.drain() == []


class TestAutoRegisterContract:
    """`push` on an unknown patient follows the documented contract: with
    ``auto_register=True`` (default) the fleet creates the monitor on first
    contact; with ``auto_register=False`` it raises a clear ``KeyError``."""

    def test_default_push_auto_registers(self, quantized_detector):
        fleet = MonitorFleet(quantized_detector, FS)
        fleet.push(9, np.zeros(128))
        assert fleet.patient_ids == [9]

    def test_strict_fleet_rejects_unknown_patient(self, quantized_detector):
        fleet = MonitorFleet(quantized_detector, FS, auto_register=False)
        with pytest.raises(KeyError, match="auto_register=False"):
            fleet.push(9, np.zeros(128))
        assert fleet.patient_ids == []

    def test_strict_fleet_accepts_registered_patient(self, quantized_detector):
        fleet = MonitorFleet(quantized_detector, FS, auto_register=False)
        fleet.add_patient(9)
        fleet.push(9, np.zeros(128))
        assert fleet.patient_ids == [9]

    def test_sharded_fleet_forwards_the_contract(self, quantized_detector):
        from repro.serving import ShardedFleet

        strict = ShardedFleet(quantized_detector, FS, n_shards=2, auto_register=False)
        with pytest.raises(KeyError, match="auto_register=False"):
            strict.push(9, np.zeros(128))
        lax = ShardedFleet(quantized_detector, FS, n_shards=2)
        lax.push(9, np.zeros(128))
        assert lax.patient_ids == [9]

    def test_strict_fleet_rejects_enqueue_for_unknown_patient(self, quantized_detector):
        """Regression: ``enqueue`` used to bypass the ``auto_register=False``
        contract — replayed windows for a stray id slid straight into the
        batched drain.  It must raise the same documented ``KeyError`` as
        ``push``, before anything is queued."""
        fleet = MonitorFleet(quantized_detector, FS, auto_register=False)
        fleet.add_patient(1)
        with pytest.raises(KeyError, match="auto_register=False"):
            fleet.enqueue([_window(1), _window(9)])
        assert fleet.pending_count == 0  # nothing queued by the failed call
        fleet.enqueue([_window(1)])
        assert fleet.pending_count == 1

    def test_strict_sharded_fleet_rejects_enqueue_for_unknown_patient(
        self, quantized_detector
    ):
        from repro.serving import ShardedFleet

        strict = ShardedFleet(quantized_detector, FS, n_shards=2, auto_register=False)
        strict.add_patient(1)
        with pytest.raises(KeyError, match="auto_register=False"):
            strict.enqueue([_window(1), _window(9)])
        assert strict.pending_count == 0
        assert strict.enqueue([_window(1)]) == 1
        # The lax fleet keeps accepting replayed windows for unknown ids.
        lax = MonitorFleet(quantized_detector, FS)
        assert lax.enqueue([_window(9)]) == 1


def _window(patient_id=0, start_s=0.0):
    return PendingWindow(
        patient_id=patient_id,
        start_s=start_s,
        end_s=start_s + 180.0,
        n_beats=0,
        features=None,
    )


class TestDrainPolicies:
    """DrainPolicy scheduling against a fleet with an injected fake clock."""

    def _fleet(self, quantized_detector, policy, now):
        return MonitorFleet(
            quantized_detector, FS, drain_policy=policy, clock=lambda: now[0]
        )

    def test_chunk_count_policy(self, quantized_detector):
        fleet = self._fleet(quantized_detector, ChunkCountPolicy(3), [0.0])
        for i in range(2):
            fleet.push(0, np.zeros(64))
            assert not fleet.should_drain()
        fleet.push(0, np.zeros(64))
        assert fleet.should_drain()
        fleet.drain()
        assert fleet.stats().chunks_since_drain == 0 and not fleet.should_drain()

    def test_pending_window_policy(self, quantized_detector):
        fleet = self._fleet(quantized_detector, PendingWindowPolicy(2), [0.0])
        fleet.enqueue([_window(0)])
        assert fleet.maybe_drain() == []
        fleet.enqueue([_window(1)])
        decisions = fleet.maybe_drain()
        assert len(decisions) == 2
        assert fleet.pending_count == 0

    def test_latency_policy_uses_oldest_window_age(self, quantized_detector):
        now = [100.0]
        fleet = self._fleet(quantized_detector, LatencyPolicy(5.0), now)
        assert not fleet.should_drain()  # empty queue never drains
        fleet.enqueue([_window(0)])
        now[0] = 104.9
        assert not fleet.should_drain()
        fleet.enqueue([_window(1)])  # newer window must not reset the age
        now[0] = 105.0
        assert fleet.stats().oldest_pending_age_s == pytest.approx(5.0)
        assert len(fleet.maybe_drain()) == 2

    def test_any_of_combinator(self, quantized_detector):
        now = [0.0]
        policy = AnyOf([PendingWindowPolicy(10), LatencyPolicy(2.0)])
        fleet = self._fleet(quantized_detector, policy, now)
        fleet.enqueue([_window(0)])
        assert not fleet.should_drain()
        now[0] = 2.0
        assert fleet.should_drain()

    def test_run_prefers_explicit_policy_and_restores_fleet_policy(
        self, fleet_streams, quantized_detector
    ):
        fleet_policy = ChunkCountPolicy(1000)
        fleet = MonitorFleet(quantized_detector, FS, drain_policy=fleet_policy)
        decisions = fleet.run(fleet_streams, policy=PendingWindowPolicy(1))
        assert fleet.drain_policy is fleet_policy
        baseline = MonitorFleet(quantized_detector, FS).run(fleet_streams)
        assert decisions == baseline

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ChunkCountPolicy(0)
        with pytest.raises(ValueError):
            PendingWindowPolicy(0)
        with pytest.raises(ValueError):
            LatencyPolicy(-1.0)
        with pytest.raises(ValueError):
            AnyOf([])

    def test_merge_stats(self):
        merged = merge_stats(
            [
                DrainStats(
                    pending_windows=2,
                    chunks_since_drain=5,
                    oldest_pending_age_s=1.5,
                    n_patients=3,
                ),
                DrainStats(
                    pending_windows=0,
                    chunks_since_drain=1,
                    oldest_pending_age_s=0.0,
                    n_patients=2,
                ),
            ]
        )
        assert merged == DrainStats(
            pending_windows=2, chunks_since_drain=6, oldest_pending_age_s=1.5, n_patients=5
        )
        assert merge_stats([]) == DrainStats(
            pending_windows=0, chunks_since_drain=0, oldest_pending_age_s=0.0, n_patients=0
        )


class TestBatchedModelParity:
    """Batched N-window inference == per-window loop, float and fixed point."""

    def test_quantized_batch_equals_per_row(self, feature_matrix, quantized_detector):
        X = feature_matrix.X
        batched = quantized_detector.predict(X)
        per_row = np.concatenate(
            [quantized_detector.predict(X[i : i + 1]) for i in range(X.shape[0])]
        )
        assert np.array_equal(batched, per_row)
        scores, labels = quantized_detector.scores_and_labels(X)
        assert np.array_equal(labels, batched)
        assert np.array_equal(np.asarray(scores), quantized_detector.decision_function(X))

    def test_fast_path_matches_exact_path(self, feature_matrix, quantized_detector):
        assert quantized_detector._use_fast_path
        X = feature_matrix.X[:32]
        q = quantized_detector.quantize_input(X)
        fast = quantized_detector._accumulate_int64(q)
        exact = quantized_detector._accumulate_exact(q)
        assert [int(v) for v in fast] == [int(v) for v in exact]

    def test_float_batch_equals_per_row(self, feature_matrix, quadratic_model):
        X = feature_matrix.X
        batched = quadratic_model.predict(X)
        per_row = np.concatenate(
            [quadratic_model.predict(X[i : i + 1]) for i in range(X.shape[0])]
        )
        assert np.array_equal(batched, per_row)
        scores, labels = quadratic_model.scores_and_labels(X)
        assert np.array_equal(labels, batched)
        assert np.allclose(scores, quadratic_model.decision_function(X))