"""Streaming / batched inference engine for fleets of wearable monitors.

This package turns the one-shot reproduction pipeline into the *online*
monitor of Figure 1 of the paper.  The per-patient signal path mirrors the
figure stage by stage:

    raw ECG chunks
        │  :class:`repro.dsp.peaks.StreamingPeakDetector`
        │  (band-pass → derivative → square → integrate → adaptive threshold,
        │   with carry-over state across chunk boundaries)
        ▼
    R-peak / R-amplitude stream
        │  :class:`repro.signals.windows.StreamingWindower`
        │  (incremental three-minute window assembly)
        ▼
    per-window beat data
        │  :meth:`repro.features.extractor.FeatureExtractor.extract_beats`
        │  (HRV + Lorenz + AR-of-EDR + PSD-of-EDR — the 53 features)
        ▼
    feature vectors
        │  :class:`~repro.svm.model.SVMModel` /
        │  :class:`~repro.quant.quantized_model.QuantizedSVM`
        │  (quadratic-kernel decision, float or bit-accurate fixed point)
        ▼
    per-window alarm decisions

Entry points, smallest to largest deployment:

* :class:`~repro.serving.streaming.StreamingMonitor` — one patient, one
  ECG stream, chunk in / decisions out;
* :class:`~repro.serving.fleet.MonitorFleet` — many concurrent patients;
  pending windows from all monitors are classified in a *single* vectorised
  SVM call per drain, which is what lets one server keep up with a fleet of
  body sensor nodes (see ``benchmarks/test_bench_serving.py``);
* :class:`~repro.serving.sharding.ShardedFleet` — N consistent-hash-routed
  fleet shards behind the same interface (serial, thread-pool or
  process-per-shard backends), decision-for-decision identical to a single
  fleet (``tests/test_serving_sharding.py``).

On top of the fleets sits the push-based front door:
:class:`~repro.serving.ingest.IngestGateway` accepts wire-format frames over
TCP (and in-process async queues), reassembles them across arbitrary socket
read boundaries with :class:`~repro.serving.wire.StreamDecoder`, absorbs
bursts in per-patient bounded queues (block / shed-oldest / reject
backpressure) and feeds the fleet through a drain task — decisions stay
identical to the synchronous loop (``tests/test_serving_ingest.py``).

*Which model* classifies each patient is a
:class:`~repro.serving.registry.ModelRegistry` decision: both fleet classes
accept either one shared classifier or a registry of per-patient tailored
design points (feature subset, SV budget, bit widths — buildable straight
from :mod:`repro.core` combined-flow :class:`~repro.core.design_point.DesignPoint`
outputs) with hot-swap epochs, and the drain stays batched by grouping
pending windows per model (``tests/test_serving_registry.py``).

Cross-cutting pieces: :mod:`repro.serving.wire` frames ECG chunks *and*
federation control messages for transport (versioned binary format with a
typed frame-kind registry, CRC, per-patient sequence numbers) and
:mod:`repro.serving.scheduler` decides *when* fleets classify their queued
windows (chunk-count, queue-size or latency-triggered
:class:`~repro.serving.scheduler.DrainPolicy` objects).

Above the single host, :class:`~repro.serving.cluster.GatewayCluster`
federates many gateways behind one consistent-hash ring: patients migrate
between nodes over the HANDOFF/STATE/ACK control frames (ACK-before-forget:
a mid-handoff crash leaves exactly one owner), dead nodes' patients revive
from checkpoints plus a write-ahead log, and the
:class:`~repro.serving.cluster.ClusterStats` ledger proves every received
frame is accounted on exactly one host (``tests/test_serving_cluster.py``).
"""

from repro.serving.streaming import (
    MONITOR_STATE_VERSION,
    GapStats,
    MonitorState,
    PendingWindow,
    StreamingMonitor,
    WindowDecision,
    classify_windows,
)
from repro.serving.autoscale import (
    AutoscaleConfig,
    AutoscaleController,
    AutoscaleDecision,
    Cusum,
    Ewma,
)
from repro.serving.cluster import ClusterStats, GatewayCluster, HandoffError
from repro.serving.fleet import MonitorFleet, decision_sort_key
from repro.serving.ingest import (
    BACKPRESSURE_POLICIES,
    BackpressureError,
    GatewayStats,
    IngestGateway,
)
from repro.serving.scheduler import (
    AnyOf,
    ChunkCountPolicy,
    DrainPolicy,
    DrainStats,
    LatencyPolicy,
    PendingWindowPolicy,
)
from repro.serving.registry import (
    InferenceBackend,
    ModelRegistry,
    backend_from_design_point,
    backend_label,
    classify_grouped,
)
from repro.serving.sharding import HashRing, ShardDrainError, ShardedFleet, TopologyPlan
from repro.serving.wire import (
    ACK_IMPORT_FAILED,
    ACK_OK,
    ACK_VERSION_MISMATCH,
    FRAME_KINDS,
    AckFrame,
    DuplicateChunkError,
    EcgChunk,
    Frame,
    HandoffFrame,
    OutOfOrderChunkError,
    SequenceError,
    SequenceTracker,
    StateFrame,
    StreamDecoder,
    WireFormatError,
    decode_chunk,
    decode_frame,
    encode_ack,
    encode_chunk,
    encode_frame,
    encode_handoff,
    encode_state,
    iter_chunks,
    iter_frames,
)

__all__ = [
    "MONITOR_STATE_VERSION",
    "GapStats",
    "MonitorState",
    "PendingWindow",
    "WindowDecision",
    "StreamingMonitor",
    "MonitorFleet",
    "ShardedFleet",
    "ShardDrainError",
    "HashRing",
    "TopologyPlan",
    "GatewayCluster",
    "ClusterStats",
    "HandoffError",
    "classify_windows",
    "classify_grouped",
    "decision_sort_key",
    "InferenceBackend",
    "ModelRegistry",
    "backend_from_design_point",
    "backend_label",
    "DrainPolicy",
    "DrainStats",
    "ChunkCountPolicy",
    "PendingWindowPolicy",
    "LatencyPolicy",
    "AnyOf",
    "AutoscaleController",
    "AutoscaleConfig",
    "AutoscaleDecision",
    "Ewma",
    "Cusum",
    "IngestGateway",
    "GatewayStats",
    "BackpressureError",
    "BACKPRESSURE_POLICIES",
    "EcgChunk",
    "Frame",
    "HandoffFrame",
    "StateFrame",
    "AckFrame",
    "FRAME_KINDS",
    "ACK_OK",
    "ACK_VERSION_MISMATCH",
    "ACK_IMPORT_FAILED",
    "encode_chunk",
    "decode_chunk",
    "encode_frame",
    "decode_frame",
    "encode_handoff",
    "encode_state",
    "encode_ack",
    "iter_chunks",
    "iter_frames",
    "StreamDecoder",
    "SequenceTracker",
    "SequenceError",
    "DuplicateChunkError",
    "OutOfOrderChunkError",
    "WireFormatError",
]
