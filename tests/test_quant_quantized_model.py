"""Unit tests for the bit-accurate fixed-point inference pipeline."""

import numpy as np
import pytest

from repro.quant.quantized_model import QuantizationConfig, QuantizedSVM
from repro.svm.kernels import GaussianKernel, PolynomialKernel
from repro.svm.model import SVMTrainParams, train_svm


@pytest.fixture(scope="module")
def trained(feature_matrix):
    model = train_svm(
        feature_matrix.X,
        feature_matrix.y,
        kernel=PolynomialKernel(degree=2),
        params=SVMTrainParams(),
    )
    return model, feature_matrix


class TestConstruction:
    def test_rejects_non_quadratic_kernel(self, feature_matrix):
        gaussian = train_svm(feature_matrix.X, feature_matrix.y, kernel=GaussianKernel())
        with pytest.raises(ValueError):
            QuantizedSVM(gaussian)
        cubic = train_svm(feature_matrix.X, feature_matrix.y, kernel=PolynomialKernel(degree=3))
        with pytest.raises(ValueError):
            QuantizedSVM(cubic)

    def test_rejects_scaled_quadratic_kernel(self, feature_matrix):
        scaled = train_svm(
            feature_matrix.X, feature_matrix.y, kernel=PolynomialKernel(degree=2, gamma=0.1)
        )
        with pytest.raises(ValueError):
            QuantizedSVM(scaled)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QuantizationConfig(feature_bits=1)
        with pytest.raises(ValueError):
            QuantizationConfig(truncate_after_dot=-1)

    def test_integer_artifacts_have_expected_shapes(self, trained):
        model, _ = trained
        quantized = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        assert quantized.sv_int.shape == model.support_vectors.shape
        assert quantized.coeff_int.shape == model.dual_coef.shape
        assert quantized.range_exponents.shape == (model.n_features,)

    def test_feature_words_fit_width(self, trained):
        model, _ = trained
        bits = 9
        quantized = QuantizedSVM(model, QuantizationConfig(feature_bits=bits, coeff_bits=15))
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        assert quantized.sv_int.min() >= lo and quantized.sv_int.max() <= hi

    def test_coeff_words_fit_width(self, trained):
        model, _ = trained
        bits = 15
        quantized = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=bits))
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        assert quantized.coeff_int.min() >= lo and quantized.coeff_int.max() <= hi


class TestInferenceAccuracy:
    def test_wide_words_match_float_predictions(self, trained):
        model, features = trained
        quantized = QuantizedSVM(
            model, QuantizationConfig(feature_bits=24, coeff_bits=24, per_feature_scaling=True)
        )
        agreement = np.mean(quantized.predict(features.X) == model.predict(features.X))
        assert agreement > 0.98

    def test_paper_point_close_to_float(self, trained):
        model, features = trained
        quantized = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        agreement = np.mean(quantized.predict(features.X) == model.predict(features.X))
        assert agreement > 0.9

    def test_very_low_precision_degrades(self, trained):
        model, features = trained
        coarse = QuantizedSVM(model, QuantizationConfig(feature_bits=3, coeff_bits=4))
        fine = QuantizedSVM(model, QuantizationConfig(feature_bits=12, coeff_bits=16))
        float_pred = model.predict(features.X)
        agreement_coarse = np.mean(coarse.predict(features.X) == float_pred)
        agreement_fine = np.mean(fine.predict(features.X) == float_pred)
        assert agreement_fine >= agreement_coarse

    def test_decision_function_tracks_float(self, trained):
        model, features = trained
        quantized = QuantizedSVM(model, QuantizationConfig(feature_bits=12, coeff_bits=16))
        approx = quantized.decision_function(features.X[:40])
        exact = model.decision_function(features.X[:40])
        correlation = np.corrcoef(approx, exact)[0, 1]
        assert correlation > 0.99

    def test_exact_path_matches_fast_path(self, trained):
        """The arbitrary-precision path must agree with the int64 fast path."""
        model, features = trained
        config = QuantizationConfig(feature_bits=9, coeff_bits=15)
        quantized = QuantizedSVM(model, config)
        assert quantized._use_fast_path
        X = features.X[:25]
        fast = np.asarray(quantized._accumulate(quantized.quantize_input(X)))
        exact = np.asarray(
            [int(v) for v in quantized._accumulate_exact(quantized.quantize_input(X))]
        )
        assert np.array_equal(fast.astype(object), exact)

    def test_wide_config_uses_exact_path(self, trained):
        model, _ = trained
        quantized = QuantizedSVM(model, QuantizationConfig(feature_bits=40, coeff_bits=40))
        assert not quantized._use_fast_path

    def test_global_scaling_variant_runs(self, trained):
        model, features = trained
        quantized = QuantizedSVM(
            model,
            QuantizationConfig(feature_bits=16, coeff_bits=16, per_feature_scaling=False),
        )
        assert len(np.unique(quantized.range_exponents)) == 1
        predictions = quantized.predict(features.X[:20])
        assert set(np.unique(predictions)).issubset({-1, 1})

    def test_predict_validates_feature_count(self, trained):
        model, _ = trained
        quantized = QuantizedSVM(model, QuantizationConfig())
        with pytest.raises(ValueError):
            quantized.predict(np.zeros((2, 3)))


class TestAcceleratorConfigBridge:
    def test_config_matches_model_dimensions(self, trained):
        model, _ = trained
        quantized = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
        config = quantized.accelerator_config()
        assert config.n_features == model.n_features
        assert config.n_support_vectors == model.n_support_vectors
        assert config.feature_bits == 9
        assert config.coeff_bits == 15
        assert config.per_feature_scaling is True
