"""Seizure event scheduling for synthetic recordings.

The clinical dataset used in the paper contains 34 focal epileptic seizures
spread over 140 hours of recordings from 7 patients.  Seizure onsets were
annotated by medical experts.  This module generates comparable annotation
objects for the synthetic cohort: a small number of seizures per recording
session, placed far enough apart (and far enough from the session boundaries)
that each one yields clean pre-ictal, ictal and post-ictal segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["Seizure", "SeizureScheduleParams", "schedule_seizures"]


@dataclass(frozen=True)
class Seizure:
    """A single annotated focal seizure.

    Attributes
    ----------
    onset_s:
        Seizure onset relative to the start of the recording, in seconds.
    duration_s:
        Ictal duration in seconds.  Focal seizures typically last between
        30 seconds and 2 minutes.
    preictal_s:
        Length of the pre-ictal build-up preceding the onset during which the
        autonomic nervous system already departs from baseline (heart-rate
        drift, reduced variability).
    postictal_s:
        Length of the post-ictal recovery tail after the seizure ends.
    intensity:
        Strength of the ictal heart-rate response in [0, 1].  Focal seizures
        differ widely in how much tachycardia they produce; weak-intensity
        seizures still suppress beat-to-beat variability, which is what makes
        the detection problem non-trivially non-linear.
    """

    onset_s: float
    duration_s: float
    preictal_s: float = 60.0
    postictal_s: float = 120.0
    intensity: float = 1.0

    @property
    def offset_s(self) -> float:
        """End of the ictal phase (onset + duration)."""
        return self.onset_s + self.duration_s

    @property
    def disturbance_start_s(self) -> float:
        """Start of any autonomic disturbance (beginning of the pre-ictal phase)."""
        return max(0.0, self.onset_s - self.preictal_s)

    @property
    def disturbance_end_s(self) -> float:
        """End of any autonomic disturbance (end of the post-ictal phase)."""
        return self.offset_s + self.postictal_s

    def overlaps(self, start_s: float, end_s: float) -> bool:
        """Return True if the ictal phase intersects the interval ``[start_s, end_s)``."""
        return (self.onset_s < end_s) and (self.offset_s > start_s)

    def ictal_fraction(self, start_s: float, end_s: float) -> float:
        """Fraction of the interval ``[start_s, end_s)`` covered by the ictal phase."""
        if end_s <= start_s:
            return 0.0
        lo = max(start_s, self.onset_s)
        hi = min(end_s, self.offset_s)
        return max(0.0, hi - lo) / (end_s - start_s)


@dataclass
class SeizureScheduleParams:
    """Parameters controlling how seizures are placed within a session."""

    mean_duration_s: float = 75.0
    duration_jitter_s: float = 30.0
    min_duration_s: float = 30.0
    max_duration_s: float = 150.0
    preictal_s: float = 60.0
    postictal_s: float = 120.0
    #: Minimum spacing between consecutive seizure onsets.
    min_gap_s: float = 900.0
    #: Keep seizures away from the session boundaries so that every seizure
    #: window has full pre/post-ictal context.
    margin_s: float = 400.0
    #: Range of the per-seizure heart-rate response intensity.
    min_intensity: float = 0.55
    max_intensity: float = 1.0


def _sample_duration(params: SeizureScheduleParams, rng: np.random.Generator) -> float:
    duration = rng.normal(params.mean_duration_s, params.duration_jitter_s)
    return float(np.clip(duration, params.min_duration_s, params.max_duration_s))


def schedule_seizures(
    session_duration_s: float,
    n_seizures: int,
    rng: np.random.Generator,
    params: Optional[SeizureScheduleParams] = None,
) -> List[Seizure]:
    """Place ``n_seizures`` seizures inside a session of the given duration.

    Onsets are drawn uniformly at random inside the admissible interval and
    rejected until all pairwise gaps exceed ``min_gap_s``.  If the session is
    too short to host the requested number of seizures under the spacing
    constraints, the constraint is progressively relaxed rather than failing,
    mirroring how short clinical sessions may still contain clustered
    seizures.

    Parameters
    ----------
    session_duration_s:
        Total length of the recording session in seconds.
    n_seizures:
        Number of seizures to place.  May be zero (seizure-free session).
    rng:
        NumPy random generator (the cohort generator owns seeding).
    params:
        Scheduling parameters; defaults are typical of focal seizures.

    Returns
    -------
    list of :class:`Seizure`, sorted by onset.
    """
    if params is None:
        params = SeizureScheduleParams()
    if n_seizures <= 0:
        return []
    if session_duration_s <= 2 * params.margin_s:
        raise ValueError(
            "session_duration_s=%.1f is too short for margin_s=%.1f"
            % (session_duration_s, params.margin_s)
        )

    lo = params.margin_s
    hi = session_duration_s - params.margin_s
    min_gap = params.min_gap_s
    onsets: List[float] = []
    # Relax the gap constraint geometrically if placement keeps failing; this
    # guarantees termination even for dense schedules.
    for _ in range(64):
        onsets = []
        attempts = 0
        while len(onsets) < n_seizures and attempts < 1000:
            candidate = float(rng.uniform(lo, hi))
            attempts += 1
            if all(abs(candidate - existing) >= min_gap for existing in onsets):
                onsets.append(candidate)
        if len(onsets) == n_seizures:
            break
        min_gap *= 0.5
    if len(onsets) < n_seizures:
        raise RuntimeError(
            "could not place %d seizures in a %.0f s session" % (n_seizures, session_duration_s)
        )

    onsets.sort()
    return [
        Seizure(
            onset_s=onset,
            duration_s=_sample_duration(params, rng),
            preictal_s=params.preictal_s,
            postictal_s=params.postictal_s,
            intensity=float(rng.uniform(params.min_intensity, params.max_intensity)),
        )
        for onset in onsets
    ]
