"""Versioned binary wire protocol: typed frames for data *and* control.

A body sensor node ships its raw ECG to the serving backend in framed,
self-describing chunks; gateways in a federated cluster additionally
exchange *control* frames (patient handoffs, monitor-state payloads,
acknowledgements) over the same transport.  Every frame is a fixed 32-byte
little-endian header followed by a payload:

======  ====  ==========  ====================================================
offset  size  type        field
======  ====  ==========  ====================================================
0       4     ``4s``      magic ``b"ECGC"``
4       1     ``u8``      format version (currently :data:`WIRE_VERSION` = 2)
5       1     ``u8``      payload dtype code (see :data:`DTYPE_CODES`; must be
                          0 for control frames, which carry no samples)
6       1     ``u8``      frame kind (see :data:`FRAME_KINDS`)
7       1     ``u8``      reserved, must be zero
8       4     ``u32``     patient id
12      4     ``u32``     chunk sequence number (data frames, per patient,
                          starts at 0) / handoff token (control frames)
16      4     ``u32``     count — sample count (``DATA``), state version
                          (``HANDOFF``), payload byte length (``STATE``),
                          status code (``ACK``)
20      8     ``f64``     sampling frequency (Hz)
28      4     ``u32``     CRC-32 of the whole frame (header with this field
                          zeroed, then payload)
32      --    payload     ``DATA``: ``count`` samples of the declared dtype,
                          little endian; ``STATE``: ``count`` opaque bytes (a
                          pickled :class:`~repro.serving.streaming.MonitorState`);
                          empty for ``HANDOFF`` / ``ACK``
======  ====  ==========  ====================================================

Frame kinds (:data:`FRAME_KINDS` maps the kind byte to the frame dataclass):

====  ===========================  =============================================
kind  frame                        meaning
====  ===========================  =============================================
0     :class:`EcgChunk`            raw ECG samples (the PR 2 data frame)
1     :class:`HandoffFrame`        "patient X is migrating to you" — announces
                                   a :class:`StateFrame` and pins the sender's
                                   ``MONITOR_STATE_VERSION``
2     :class:`StateFrame`          the pickled monitor state itself, CRC'd like
                                   any other payload
3     :class:`AckFrame`            destination's verdict on the import; only an
                                   ``ACK_OK`` lets the source forget the patient
====  ===========================  =============================================

The CRC covers the *header as well as* the payload: a flipped bit in
``patient_id`` would otherwise route perfectly valid samples (or a whole
monitor state) to the wrong patient, which is corruption just as surely as a
damaged sample.

:func:`encode_frame` / :func:`decode_frame` convert between frames and their
typed dataclasses, dispatching on the kind byte; :func:`encode_chunk` /
:func:`decode_chunk` are the data-frame specialisations existing callers
use, and :func:`iter_chunks` / :func:`iter_frames` split a concatenated byte
stream back into frames.  Decoding is strict: bad magic, unknown version,
kind or dtype, non-zero reserved bits, a truncated payload, trailing garbage
or a CRC mismatch all raise :class:`WireFormatError` — a corrupted frame is
never silently turned into samples (or into somebody's monitor state).

A *live* byte stream (a TCP socket) delivers frames in arbitrary pieces:
``read()`` may return half a header, three frames and a bit, or one byte.
:class:`StreamDecoder` is the incremental counterpart of :func:`iter_frames`
for that case — feed it whatever bytes arrived and it yields every frame
that has become complete (data and control frames alike, typed), buffering
the partial tail for the next feed.  It applies the same strict validation,
and fails as *early* as the arrived bytes allow (a bad magic needs four
bytes, not a whole frame).

Delivery-order policing is separate from framing: a :class:`SequenceTracker`
validates per-patient sequence numbers and raises
:class:`DuplicateChunkError` for already-seen chunks and
:class:`OutOfOrderChunkError` for gaps or reordering, so a monitor's
carry-over DSP state can never be corrupted by a misdelivered chunk
(:meth:`repro.serving.streaming.StreamingMonitor.push` applies one tracker
per stream when sequence numbers are provided).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple, Union

import numpy as np

__all__ = [
    "WIRE_VERSION",
    "WIRE_MAGIC",
    "HEADER",
    "DTYPE_CODES",
    "FRAME_KINDS",
    "FRAME_KIND_DATA",
    "FRAME_KIND_HANDOFF",
    "FRAME_KIND_STATE",
    "FRAME_KIND_ACK",
    "ACK_OK",
    "ACK_VERSION_MISMATCH",
    "ACK_IMPORT_FAILED",
    "WireFormatError",
    "SequenceError",
    "DuplicateChunkError",
    "OutOfOrderChunkError",
    "EcgChunk",
    "DataFrame",
    "HandoffFrame",
    "StateFrame",
    "AckFrame",
    "Frame",
    "encode_frame",
    "decode_frame",
    "encode_chunk",
    "decode_chunk",
    "decode_chunk_checked",
    "encode_handoff",
    "encode_state",
    "encode_ack",
    "iter_chunks",
    "iter_frames",
    "StreamDecoder",
    "SequenceTracker",
]

#: Current wire-format version; bumped on any incompatible layout change.
#: Version 2 split the v1 u16 reserved field into the frame-kind byte plus a
#: u8 reserved byte, turning the chunk format into a typed frame protocol.
WIRE_VERSION = 2

#: Frame magic, first four bytes of every frame.
WIRE_MAGIC = b"ECGC"

#: Little-endian header layout (see the module docstring for the field table).
HEADER = struct.Struct("<4sBBBBIIIdI")

#: Supported payload dtypes.  Frames always carry little-endian samples; the
#: integer formats are for nodes that transmit raw ADC codes.
DTYPE_CODES: Dict[int, np.dtype] = {
    0: np.dtype("<f8"),
    1: np.dtype("<f4"),
    2: np.dtype("<i2"),
    3: np.dtype("<i4"),
}
_CODE_OF_DTYPE = {dtype: code for code, dtype in DTYPE_CODES.items()}

#: Frame-kind codes.
FRAME_KIND_DATA = 0
FRAME_KIND_HANDOFF = 1
FRAME_KIND_STATE = 2
FRAME_KIND_ACK = 3

#: :class:`AckFrame` status codes.
ACK_OK = 0
ACK_VERSION_MISMATCH = 1
ACK_IMPORT_FAILED = 2


class WireFormatError(ValueError):
    """A frame could not be decoded (corruption, truncation, bad version)."""


class SequenceError(ValueError):
    """A chunk arrived with an unacceptable sequence number."""

    def __init__(self, message: str, *, seq: int, expected: int) -> None:
        super().__init__(message)
        self.seq = int(seq)
        self.expected = int(expected)

    def __reduce__(self) -> tuple[object, tuple[object, ...]]:
        # Keyword-only constructor args defeat the default exception pickling
        # (needed when a shard worker process reports a sequence violation).
        return (
            _rebuild_sequence_error,
            (type(self), self.args[0], self.seq, self.expected),
        )


def _rebuild_sequence_error(
    cls: type[SequenceError], message: str, seq: int, expected: int
) -> SequenceError:
    return cls(message, seq=seq, expected=expected)


class DuplicateChunkError(SequenceError):
    """The chunk's sequence number was already consumed."""


class OutOfOrderChunkError(SequenceError):
    """The chunk skips ahead of the next expected sequence number."""


@dataclass(frozen=True)
class EcgChunk:
    """One decoded ECG data frame: routing metadata plus the raw samples."""

    patient_id: int
    seq: int
    fs: float
    samples: np.ndarray

    @property
    def n_samples(self) -> int:
        return int(self.samples.shape[0])

    @property
    def duration_s(self) -> float:
        return self.n_samples / self.fs


#: The data frame under its protocol-role name: kind 0 of :data:`FRAME_KINDS`.
DataFrame = EcgChunk


@dataclass(frozen=True)
class HandoffFrame:
    """Control frame opening a patient migration (kind 1).

    The source gateway has quiesced ``patient_id`` and is about to ship its
    monitor state; ``state_version`` pins the sender's
    ``MONITOR_STATE_VERSION`` so an incompatible destination can refuse
    *before* unpickling anything.  ``token`` correlates the HANDOFF, its
    STATE and the eventual ACK on a multiplexed connection.
    """

    patient_id: int
    token: int
    state_version: int
    fs: float


@dataclass(frozen=True)
class StateFrame:
    """Control frame carrying one pickled monitor state (kind 2).

    ``payload`` is the pickled
    :class:`~repro.serving.streaming.MonitorState`, protected by the frame
    CRC exactly like sample payloads — a corrupted state must be rejected at
    the framing layer, never handed to ``pickle``.
    """

    patient_id: int
    token: int
    fs: float
    payload: bytes


@dataclass(frozen=True)
class AckFrame:
    """Control frame closing a handoff (kind 3).

    ``status`` is :data:`ACK_OK` when the destination imported the state and
    now owns the patient — only then may the source forget them (the
    ACK-before-forget rule that makes a mid-handoff crash leave exactly one
    owner).  Non-zero statuses (:data:`ACK_VERSION_MISMATCH`,
    :data:`ACK_IMPORT_FAILED`) tell the source to roll back.
    """

    patient_id: int
    token: int
    status: int
    fs: float


#: Anything :func:`decode_frame` / :meth:`StreamDecoder.feed` may return.
Frame = Union[EcgChunk, HandoffFrame, StateFrame, AckFrame]

#: Frame-kind registry: kind byte -> frame dataclass.  A dict literal with
#: integer keys, fingerprinted (like :data:`DTYPE_CODES`) by the
#: ``wire-version`` rule of :mod:`repro.analysis` — adding a control frame
#: without bumping :data:`WIRE_VERSION` is a lint finding.
FRAME_KINDS: Dict[int, type] = {
    0: EcgChunk,
    1: HandoffFrame,
    2: StateFrame,
    3: AckFrame,
}
_KIND_OF_FRAME = {cls: kind for kind, cls in FRAME_KINDS.items()}


def _pack_frame(
    kind: int,
    dtype_code: int,
    patient_id: int,
    seq: int,
    count: int,
    fs: float,
    payload: bytes,
) -> bytes:
    """Assemble one CRC'd frame from validated fields."""
    patient_id = int(patient_id)
    seq = int(seq)
    count = int(count)
    if not 0 <= patient_id < 2**32:
        raise ValueError("patient_id %d does not fit the u32 header field" % patient_id)
    if not 0 <= seq < 2**32:
        raise ValueError("seq %d does not fit the u32 header field" % seq)
    if not 0 <= count < 2**32:
        raise ValueError("count %d does not fit the u32 header field" % count)
    fs = float(fs)
    if not (fs > 0.0 and np.isfinite(fs)):
        raise ValueError("fs must be positive and finite")
    bare_header = HEADER.pack(
        WIRE_MAGIC,
        WIRE_VERSION,
        dtype_code,
        kind,
        0,
        patient_id,
        seq,
        count,
        fs,
        0,
    )
    crc = zlib.crc32(payload, zlib.crc32(bare_header))
    return bare_header[:-4] + struct.pack("<I", crc) + payload


def encode_chunk(
    patient_id: int,
    seq: int,
    fs: float,
    samples: np.ndarray,
    dtype: np.dtype | str | None = None,
) -> bytes:
    """Frame one ECG chunk (a kind-0 data frame) for the wire.

    Parameters
    ----------
    patient_id, seq:
        Routing metadata; both must fit an unsigned 32-bit field.  Sequence
        numbers are per patient and start at 0.
    fs:
        Sampling frequency of the payload (Hz).
    samples:
        1-D array of raw ECG samples.  Empty chunks are legal (a node may
        frame a pure keep-alive).
    dtype:
        Payload dtype; defaults to the dtype of ``samples`` when that is one
        of :data:`DTYPE_CODES`, else ``float64``.  Casting to an integer
        payload dtype is the caller's responsibility to scale sensibly.
    """
    samples = np.asarray(samples).ravel()
    if dtype is None:
        wire_dtype = samples.dtype.newbyteorder("<")
        if wire_dtype not in _CODE_OF_DTYPE:
            wire_dtype = np.dtype("<f8")
    else:
        wire_dtype = np.dtype(dtype).newbyteorder("<")
        if wire_dtype not in _CODE_OF_DTYPE:
            raise ValueError("unsupported wire dtype %r" % (dtype,))
    payload = np.ascontiguousarray(samples, dtype=wire_dtype).tobytes()
    return _pack_frame(
        FRAME_KIND_DATA,
        _CODE_OF_DTYPE[wire_dtype],
        patient_id,
        seq,
        samples.size,
        fs,
        payload,
    )


def encode_handoff(patient_id: int, token: int, state_version: int, fs: float) -> bytes:
    """Frame a :class:`HandoffFrame` (kind 1, empty payload)."""
    return _pack_frame(
        FRAME_KIND_HANDOFF, 0, patient_id, token, int(state_version), fs, b""
    )


def encode_state(patient_id: int, token: int, fs: float, payload: bytes) -> bytes:
    """Frame a :class:`StateFrame` (kind 2) around a pickled monitor state."""
    payload = bytes(payload)
    return _pack_frame(FRAME_KIND_STATE, 0, patient_id, token, len(payload), fs, payload)


def encode_ack(patient_id: int, token: int, status: int, fs: float) -> bytes:
    """Frame an :class:`AckFrame` (kind 3, empty payload)."""
    return _pack_frame(FRAME_KIND_ACK, 0, patient_id, token, int(status), fs, b"")


def encode_frame(frame: Frame) -> bytes:
    """Frame any typed frame object, dispatching on its dataclass.

    The inverse of :func:`decode_frame`:
    ``decode_frame(encode_frame(f)) == f`` for every frame kind.
    """
    if isinstance(frame, EcgChunk):
        return encode_chunk(frame.patient_id, frame.seq, frame.fs, frame.samples)
    if isinstance(frame, HandoffFrame):
        return encode_handoff(frame.patient_id, frame.token, frame.state_version, frame.fs)
    if isinstance(frame, StateFrame):
        return encode_state(frame.patient_id, frame.token, frame.fs, frame.payload)
    if isinstance(frame, AckFrame):
        return encode_ack(frame.patient_id, frame.token, frame.status, frame.fs)
    raise TypeError("not a wire frame: %r" % (frame,))


#: Parsed header fields: (kind, patient_id, seq, count, fs, dtype, crc).
_Header = Tuple[int, int, int, int, float, np.dtype, int]


def _parse_header(buf: bytes, offset: int) -> _Header:
    """Validate the header at ``offset``; return its decoded fields.

    Requires ``HEADER.size`` bytes to be available.  Every check that does
    not need the payload happens here, so an incremental decoder can reject
    a corrupt frame as soon as its header has arrived.
    """
    magic, version, dtype_code, kind, reserved, patient_id, seq, count, fs, crc = (
        HEADER.unpack_from(buf, offset)
    )
    if magic != WIRE_MAGIC:
        raise WireFormatError("bad magic %r (expected %r)" % (magic, WIRE_MAGIC))
    if version != WIRE_VERSION:
        raise WireFormatError("unsupported wire version %d" % version)
    if kind not in FRAME_KINDS:
        raise WireFormatError("unknown frame kind %d" % kind)
    if reserved != 0:
        raise WireFormatError("reserved header bits set (%#04x)" % reserved)
    if dtype_code not in DTYPE_CODES:
        raise WireFormatError("unknown payload dtype code %d" % dtype_code)
    if kind != FRAME_KIND_DATA and dtype_code != 0:
        raise WireFormatError(
            "control frame kind %d declares payload dtype code %d (must be 0)"
            % (kind, dtype_code)
        )
    if not fs > 0.0 or not np.isfinite(fs):
        raise WireFormatError("invalid sampling frequency %r" % fs)
    return kind, patient_id, seq, count, fs, DTYPE_CODES[dtype_code], crc


def _payload_nbytes(header: _Header) -> int:
    """Payload byte length the header declares (0 for HANDOFF / ACK)."""
    kind, _, _, count, _, dtype, _ = header
    if kind == FRAME_KIND_DATA:
        return count * dtype.itemsize
    if kind == FRAME_KIND_STATE:
        return count
    return 0


def _decode_at(buf: bytes, offset: int, header: _Header | None = None) -> tuple[Frame, int]:
    """Decode the frame starting at ``offset``; return (frame, next offset).

    ``header`` accepts the fields a caller already obtained from
    :func:`_parse_header` for this offset, so an incremental decoder does
    not validate every header twice.
    """
    if len(buf) - offset < HEADER.size:
        raise WireFormatError(
            "truncated header: %d bytes, need %d" % (len(buf) - offset, HEADER.size)
        )
    if header is None:
        header = _parse_header(buf, offset)
    kind, patient_id, seq, count, fs, dtype, crc = header
    start = offset + HEADER.size
    nbytes = _payload_nbytes(header)
    end = start + nbytes
    if len(buf) < end:
        raise WireFormatError(
            "truncated payload: %d bytes, header declares %d"
            % (len(buf) - start, nbytes)
        )
    payload = bytes(buf[start:end])
    bare_header = bytes(buf[offset : start - 4]) + b"\x00\x00\x00\x00"
    if zlib.crc32(payload, zlib.crc32(bare_header)) != crc:
        raise WireFormatError("frame CRC mismatch")
    frame: Frame
    if kind == FRAME_KIND_DATA:
        samples = np.frombuffer(payload, dtype=dtype)
        frame = EcgChunk(patient_id=patient_id, seq=seq, fs=float(fs), samples=samples)
    elif kind == FRAME_KIND_HANDOFF:
        frame = HandoffFrame(
            patient_id=patient_id, token=seq, state_version=count, fs=float(fs)
        )
    elif kind == FRAME_KIND_STATE:
        frame = StateFrame(patient_id=patient_id, token=seq, fs=float(fs), payload=payload)
    else:
        frame = AckFrame(patient_id=patient_id, token=seq, status=count, fs=float(fs))
    return frame, end


def decode_frame(buf: bytes) -> Frame:
    """Decode exactly one frame of any kind; trailing bytes are an error.

    Raises :class:`WireFormatError` on any corruption (see the module
    docstring for the full rejection list).
    """
    frame, end = _decode_at(buf, 0)
    if end != len(buf):
        raise WireFormatError("%d trailing bytes after the payload" % (len(buf) - end))
    return frame


def decode_chunk(buf: bytes) -> EcgChunk:
    """Decode exactly one *data* frame; a control frame is an error here.

    The data-plane specialisation of :func:`decode_frame`: callers that
    expect raw ECG (the fleets' ``push_wire``, the gateway's data path) must
    never have a control frame smuggled into their sample stream.
    """
    frame = decode_frame(buf)
    if not isinstance(frame, EcgChunk):
        raise WireFormatError(
            "frame kind %d (%s) is not a data frame"
            % (_KIND_OF_FRAME[type(frame)], type(frame).__name__)
        )
    return frame


def decode_chunk_checked(buf: bytes, fs: float) -> EcgChunk:
    """Decode one data frame and require its sampling frequency to be ``fs``.

    The shared ingestion path of the fleet classes: a frame whose payload was
    sampled at a different rate than the fleet's monitors would silently
    corrupt every DSP stage, so an fs mismatch is a :class:`WireFormatError`.
    """
    chunk = decode_chunk(buf)
    if chunk.fs != float(fs):
        raise WireFormatError(
            "chunk fs %g Hz does not match the fleet's %g Hz" % (chunk.fs, fs)
        )
    return chunk


def iter_frames(buf: bytes) -> Iterator[Frame]:
    """Split a concatenation of frames back into typed frame objects."""
    offset = 0
    while offset < len(buf):
        frame, offset = _decode_at(buf, offset)
        yield frame


def iter_chunks(buf: bytes) -> Iterator[EcgChunk]:
    """Split a concatenation of *data* frames back into :class:`EcgChunk`.

    A control frame in the stream is a :class:`WireFormatError` — this is
    the data-plane iterator; mixed streams use :func:`iter_frames`.
    """
    for frame in iter_frames(buf):
        if not isinstance(frame, EcgChunk):
            raise WireFormatError(
                "frame kind %d (%s) is not a data frame"
                % (_KIND_OF_FRAME[type(frame)], type(frame).__name__)
            )
        yield frame


class StreamDecoder:
    """Incremental frame reassembly for live byte streams.

    :meth:`feed` accepts bytes exactly as they came off a socket — any
    split, down to one byte at a time — and returns the typed frames
    completed by that feed (data and control frames alike), buffering the
    partial tail internally.  The frame sequence is invariant under the read
    chunking: for any partition of a byte stream, the concatenation of the
    ``feed`` results equals :func:`iter_frames` over the whole stream
    (property-tested in ``tests/test_serving_wire.py``).

    Validation is as strict as :func:`decode_frame` and as *early* as
    possible: a bad magic is rejected once four bytes arrived, any other
    header corruption once the 32-byte header arrived, and a CRC mismatch
    once the payload completed.  After a :class:`WireFormatError` the stream
    has lost framing and the decoder refuses further input — a transport
    should drop the connection, not resynchronise on guesswork.

    Corruption never costs the frames decoded *before* it: when a read
    completes valid frames and then hits garbage, :meth:`feed` returns the
    valid frames and defers the :class:`WireFormatError` to the next
    :meth:`feed` / :meth:`finish` call.  Delivered-frame counts therefore do
    not depend on where the socket happened to split the bytes — the same
    invariance the happy path guarantees.

    :meth:`finish` asserts clean end-of-stream: EOF in the middle of a
    buffered frame is a truncation, not a quiet success.

    ``max_frame_bytes`` bounds the payload a single header may declare
    (default 64 MiB — hours of ECG, or a monitor state orders of magnitude
    above any real one).  Without a bound, one flipped bit in the u32 count
    field of an otherwise-valid header would make the decoder buffer
    gigabytes waiting for a payload that never completes; with it, the
    oversized declaration is itself corruption, rejected the moment the
    header arrives.
    """

    def __init__(self, max_frame_bytes: int = 1 << 26) -> None:
        if max_frame_bytes <= 0:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = int(max_frame_bytes)
        self._buf = bytearray()
        self._frames_decoded = 0
        self._corrupt = False
        self._deferred: WireFormatError | None = None

    def _raise_if_poisoned(self) -> None:
        if self._deferred is not None:
            exc, self._deferred = self._deferred, None
            raise exc
        if self._corrupt:
            raise WireFormatError("stream already failed to decode; drop the connection")

    @property
    def buffered_bytes(self) -> int:
        """Bytes of the partial frame waiting for more input."""
        return len(self._buf)

    @property
    def frames_decoded(self) -> int:
        """Total frames returned by :meth:`feed` so far."""
        return self._frames_decoded

    @property
    def at_frame_boundary(self) -> bool:
        """``True`` when no partial frame is buffered (EOF would be clean)."""
        return not self._buf and not self._corrupt

    def feed(self, data: bytes) -> list[Frame]:
        """Consume one read's worth of bytes; return the frames it completed."""
        self._raise_if_poisoned()
        self._buf += data
        frames: list[Frame] = []
        offset = 0
        try:
            while True:
                available = len(self._buf) - offset
                if available == 0:
                    break
                if available < HEADER.size:
                    # Fail fast: a prefix that cannot open a valid header will
                    # never become one, however many bytes follow.
                    prefix = bytes(self._buf[offset : offset + min(available, 4)])
                    if prefix != WIRE_MAGIC[: len(prefix)]:
                        raise WireFormatError(
                            "bad magic %r (expected %r)" % (prefix, WIRE_MAGIC)
                        )
                    break
                header = _parse_header(self._buf, offset)
                payload_bytes = _payload_nbytes(header)
                if payload_bytes > self.max_frame_bytes:
                    raise WireFormatError(
                        "header declares a %d-byte payload, above the stream's"
                        " %d-byte frame bound" % (payload_bytes, self.max_frame_bytes)
                    )
                if available < HEADER.size + payload_bytes:
                    break
                frame, offset = _decode_at(self._buf, offset, header=header)
                frames.append(frame)
        except WireFormatError as exc:
            self._corrupt = True
            if not frames:
                raise
            # This read completed valid frames before the corruption: hand
            # them over and re-raise the error on the next feed()/finish(),
            # so what got delivered never depends on the read chunking.
            self._deferred = exc
        if offset:
            del self._buf[:offset]
        self._frames_decoded += len(frames)
        return frames

    def finish(self) -> None:
        """Declare end-of-stream; raise if a partial frame was left behind."""
        self._raise_if_poisoned()
        if self._buf:
            raise WireFormatError(
                "stream ended mid-frame (%d buffered bytes)" % len(self._buf)
            )


class SequenceTracker:
    """Per-stream sequence-number policing: exactly-once, in-order delivery.

    The tracker accepts only the next expected sequence number (starting at
    ``first_seq``).  Anything below it is a duplicate / stale retransmission
    (:class:`DuplicateChunkError`); anything above it is a gap or reordering
    (:class:`OutOfOrderChunkError`).  Chunks carry DSP state across their
    boundaries, so a skipped or repeated chunk would silently corrupt every
    later window — rejecting at ingestion is the only safe behaviour.

    **Recovery contract**: a rejection never moves the tracker.  However many
    duplicates or out-of-order chunks were refused, :attr:`expected` is
    exactly where the last *accepted* chunk left it, so the moment the
    transport retransmits the expected chunk the stream re-synchronises as
    if the rejected chunks had never arrived (``tests/test_serving_wire.py``
    pins this).

    **Datagram mode**: lossy transports cannot retransmit, so the tracker
    also offers an explicit, forward-only recovery API.  :meth:`skip_to`
    declares everything before ``seq`` lost and moves the tracker there (the
    caller resets whatever state spanned the gap first);
    :meth:`accept_datagram` bundles the common case — stale datagrams still
    raise :class:`DuplicateChunkError`, a datagram ahead of the stream skips
    the tracker forward and reports how many units were lost.  In datagram
    mode ``seq`` carries the stream *offset* of the payload's first unit
    (e.g. the absolute sample index), and acceptance advances by the
    payload's ``span``, so a gap's size is known exactly from the jump.
    """

    def __init__(self, first_seq: int = 0) -> None:
        self._first = int(first_seq)
        self._expected = int(first_seq)

    @property
    def expected(self) -> int:
        """The only sequence number :meth:`validate` will currently accept."""
        return self._expected

    @property
    def last_seq(self) -> int | None:
        """The last accepted sequence number (``None`` before the first)."""
        return self._expected - 1 if self._expected > self._first else None

    def snapshot(self) -> tuple[int, int]:
        """The tracker's position as a picklable ``(first_seq, expected)`` pair.

        Part of a patient's migratable monitor state: a tracker revived with
        :meth:`from_snapshot` enforces exactly the same next-expected chunk,
        so a live reshard can never open a duplicate/gap window in a stream.
        """
        return (self._first, self._expected)

    @classmethod
    def from_snapshot(cls, state: tuple[int, int]) -> "SequenceTracker":
        """Revive a tracker at a snapshotted position."""
        first, expected = state
        tracker = cls(first)
        if expected < first:
            raise ValueError(
                "expected seq %d precedes first seq %d" % (expected, first)
            )
        tracker._expected = int(expected)
        return tracker

    def check(self, seq: int) -> int:
        """Classify ``seq`` like :meth:`validate` but never move the tracker.

        Lets a caller reject a chunk *before* absorbing its payload and
        commit the advancement only once absorption succeeded, so a failed
        absorb can be retried without being misread as a duplicate.
        """
        seq = int(seq)
        if seq < self._expected:
            raise DuplicateChunkError(
                "duplicate chunk seq %d (next expected %d)" % (seq, self._expected),
                seq=seq,
                expected=self._expected,
            )
        if seq > self._expected:
            raise OutOfOrderChunkError(
                "out-of-order chunk seq %d (next expected %d)" % (seq, self._expected),
                seq=seq,
                expected=self._expected,
            )
        return seq

    def validate(self, seq: int, span: int = 1) -> int:
        """Accept ``seq`` or raise; returns the accepted sequence number.

        ``span`` is how far acceptance advances the tracker: 1 for counted
        chunks (the default, and the strict-transport behaviour), or the
        payload's unit count in datagram mode, where ``seq`` is a stream
        offset rather than a chunk counter.
        """
        seq = self.check(seq)
        if span < 0:
            raise ValueError("span must be >= 0, got %d" % span)
        self._expected += int(span)
        return seq

    def skip_to(self, seq: int) -> int:
        """Declare everything before ``seq`` lost; returns the units skipped.

        Forward-only: moving the tracker backwards would re-open a window
        for duplicates, so a ``seq`` behind :attr:`expected` raises
        ``ValueError``.  The caller is responsible for resetting any state
        that spanned the gap *before* pushing post-gap data.
        """
        seq = int(seq)
        if seq < self._expected:
            raise ValueError(
                "cannot skip backwards to seq %d (next expected %d)"
                % (seq, self._expected)
            )
        skipped = seq - self._expected
        self._expected = seq
        return skipped

    def check_datagram(self, seq: int) -> int:
        """Datagram-tolerant :meth:`check`: stale raises, ahead is a gap.

        Returns the gap size in units (0 when ``seq`` is exactly the next
        expected offset) without moving the tracker; a ``seq`` behind the
        stream raises :class:`DuplicateChunkError` exactly like the strict
        mode, because late datagrams must not rewind absorbed state.
        """
        seq = int(seq)
        if seq < self._expected:
            raise DuplicateChunkError(
                "stale datagram seq %d (stream is at %d)" % (seq, self._expected),
                seq=seq,
                expected=self._expected,
            )
        return seq - self._expected

    def accept_datagram(self, seq: int, span: int) -> int:
        """Accept a datagram at stream offset ``seq`` covering ``span`` units.

        The DATAGRAM-tolerant accept mode: a stale datagram raises
        :class:`DuplicateChunkError`; one ahead of the stream skips the
        tracker to ``seq`` first.  Returns how many units were skipped (0
        for in-order delivery).  Never raises ``OutOfOrderChunkError`` —
        on a lossy transport a jump ahead *is* the loss signal.
        """
        skipped = self.check_datagram(seq)
        if skipped:
            self.skip_to(seq)
        self.validate(seq, span=span)
        return skipped
