"""``int-purity``: no float arithmetic inside ``@int_only`` functions.

The fixed-point pipeline's guarantee is bit-exactness: every intermediate of
:class:`~repro.quant.quantized_model.QuantizedSVM` is an integer, so the
int64 fast path, the exact-arithmetic fallback and the hardware datapath all
produce the *same* accumulator words.  One float literal or stray ``/`` in
that code silently re-introduces rounding the accelerator does not have —
the classic field failure of embedded ML ports.

Functions opt in by carrying the
:func:`repro.analysis.markers.int_only` decorator (the designation lives in
the source, next to the guarantee).  Inside a marked function the rule
rejects:

* float (and complex) literals;
* true division ``/`` (integer paths use ``//`` or shifts);
* calls to ``float(...)`` and to ``math.*`` (float transcendentals);
* float dtypes anywhere: ``np.float16/32/64``, ``np.double``,
  ``astype(float)``, ``dtype=float`` keywords;
* float-producing NumPy reductions (``np.mean`` / ``np.average`` /
  ``np.divide`` / ``np.true_divide``).

Nested functions inherit the designation (they run inside the marked body).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Union

from repro.analysis.framework import Finding, ModuleSource, Rule

__all__ = ["IntPurityRule"]

#: Attribute names that denote a float dtype wherever they appear.
_FLOAT_DTYPE_ATTRS = frozenset(
    {"float16", "float32", "float64", "float128", "float_", "double", "half", "single"}
)
#: NumPy callables that produce floats even from integer inputs.
_FLOAT_PRODUCING_FUNCS = frozenset({"mean", "average", "divide", "true_divide"})

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _decorator_name(node: ast.expr) -> str:
    """Trailing name of a decorator expression (``a.b.int_only`` → ``int_only``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_float_dtype_expr(node: ast.expr) -> bool:
    """Whether an expression names a float dtype (``float``, ``np.float64``, ``"float32"``)."""
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    if isinstance(node, ast.Attribute) and node.attr in _FLOAT_DTYPE_ATTRS:
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.lstrip("<>=").startswith(("f", "float", "d"))
    return False


class IntPurityRule(Rule):
    """Reject float-producing constructs in ``@int_only`` functions."""

    rule_id = "int-purity"
    description = "no float literals, true division or float dtypes in @int_only functions"
    invariant = (
        "bit-exact fixed-point inference: the quantized hot path "
        "(repro.quant int64/exact pipelines, repro.hardware.arithmetic width "
        "handling) is integer-only"
    )

    def __init__(self, marker: str = "int_only") -> None:
        self.marker = marker

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
                _decorator_name(dec) == self.marker for dec in node.decorator_list
            ):
                findings.extend(self._check_function(module, node))
        return findings

    # ------------------------------------------------------------- internals
    def _check_function(self, module: ModuleSource, func: _FuncDef) -> Iterator[Finding]:
        hint = (
            "keep the @%s datapath integer-only: use //, shifts and integer "
            "constants, or move the float work outside the marked function"
            % self.marker
        )
        for stmt in func.body:
            for node in ast.walk(stmt):
                message = self._violation(node)
                if message is not None:
                    yield self.finding(module, node, message, hint)

    def _violation(self, node: ast.AST) -> Union[str, None]:
        if isinstance(node, ast.Constant) and isinstance(node.value, (float, complex)):
            return "float literal %r in an @%s function" % (node.value, self.marker)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "true division (/) produces a float in an @%s function" % self.marker
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
            return "true division (/=) produces a float in an @%s function" % self.marker
        if isinstance(node, ast.Call):
            return self._call_violation(node)
        if (
            isinstance(node, ast.keyword)
            and node.arg == "dtype"
            and _is_float_dtype_expr(node.value)
        ):
            return "float dtype keyword in an @%s function" % self.marker
        return None

    def _call_violation(self, node: ast.Call) -> Union[str, None]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return "float(...) conversion in an @%s function" % self.marker
        if isinstance(func, ast.Attribute):
            if func.attr in _FLOAT_DTYPE_ATTRS:
                return "float dtype constructor .%s in an @%s function" % (
                    func.attr,
                    self.marker,
                )
            if func.attr == "astype" and any(
                _is_float_dtype_expr(arg) for arg in node.args
            ):
                return "astype(<float>) in an @%s function" % self.marker
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "math"
            ):
                return "math.%s returns a float in an @%s function" % (
                    func.attr,
                    self.marker,
                )
            if func.attr in _FLOAT_PRODUCING_FUNCS:
                return "%s(...) produces floats in an @%s function" % (
                    func.attr,
                    self.marker,
                )
        return None
