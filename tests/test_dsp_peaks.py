"""Unit tests for the Pan–Tompkins-style R-peak detector."""

import numpy as np
import pytest

from repro.dsp.peaks import PanTompkinsParams, detect_r_peaks
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg
from repro.signals.respiration import generate_respiration
from repro.signals.rr_model import RRModelParams, generate_rr_series


@pytest.fixture(scope="module")
def synthetic_ecg():
    rng = np.random.default_rng(33)
    duration = 180.0
    respiration = generate_respiration(duration, [], rng)
    series = generate_rr_series(duration, [], respiration, rng, RRModelParams(ectopic_rate=0.0))
    ecg = synthesize_ecg(series.beat_times_s, duration, respiration, rng, ECGWaveformParams())
    return ecg, series


class TestDetectRPeaks:
    def test_detects_most_beats(self, synthetic_ecg):
        ecg, series = synthetic_ecg
        _, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs)
        true_beats = series.beat_times_s
        # Count true beats matched within 80 ms by a detection.
        matched = sum(np.any(np.abs(peak_times - t) < 0.08) for t in true_beats[2:-2])
        assert matched / (true_beats.size - 4) > 0.9

    def test_false_detection_rate_low(self, synthetic_ecg):
        ecg, series = synthetic_ecg
        _, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs)
        true_beats = series.beat_times_s
        false_detections = sum(not np.any(np.abs(true_beats - t) < 0.08) for t in peak_times)
        assert false_detections / max(peak_times.size, 1) < 0.1

    def test_detected_rr_near_true_mean(self, synthetic_ecg):
        ecg, series = synthetic_ecg
        _, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs)
        assert np.mean(np.diff(peak_times)) == pytest.approx(np.mean(series.rr_s), rel=0.05)

    def test_refractory_period_enforced(self, synthetic_ecg):
        ecg, _ = synthetic_ecg
        params = PanTompkinsParams(refractory_s=0.25)
        _, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs, params)
        assert np.all(np.diff(peak_times) >= 0.25 - 1e-6)

    def test_short_signal_returns_empty(self):
        indices, times = detect_r_peaks(np.zeros(10), 128.0)
        assert indices.size == 0 and times.size == 0

    def test_flat_signal_returns_few_peaks(self):
        indices, _ = detect_r_peaks(np.zeros(1280), 128.0)
        assert indices.size <= 2
