#!/usr/bin/env python3
"""Wearable-monitor walkthrough: a fleet of streaming monitors on one server.

The two other examples start from pre-extracted feature matrices.  This one
exercises the *full* online signal path of Figure 1 of the paper, the way a
server receiving chunks from several Wireless Body Sensor Nodes would, on top
of the :mod:`repro.serving` engine:

1. synthesise raw single-lead ECG traces for one monitored session per
   patient (the remaining sessions form the training data),
2. train a quadratic SVM and quantise it to the paper's 9/15-bit fixed-point
   design point,
3. stream every monitored trace in ~30-second chunks through a
   :class:`~repro.serving.fleet.MonitorFleet` — each chunk runs incremental
   Pan–Tompkins R-peak detection and three-minute window assembly with
   carry-over state, and completed windows from *all* patients are classified
   in batched fixed-point SVM calls,
4. print the per-patient alarm timelines next to the expert annotations, and
5. report the energy the accelerator model attributes to the fleet.

Run with:  python examples/wearable_monitor.py
"""

import numpy as np

from repro.core import hardware_cost
from repro.features.extractor import extract_cohort_features
from repro.hardware.technology import TECH_40NM
from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import MonitorFleet
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import synthesize_ecg
from repro.signals.windows import WindowingParams, window_label
from repro.svm.model import train_svm

#: Seconds of ECG per transmitted chunk (~30 s at 128 Hz).
CHUNK_SAMPLES = 3840
#: Drain the fleet's pending windows every this many received chunks.
DRAIN_EVERY = 16


def main() -> None:
    # --------------------------------------------------------------- cohort
    params = CohortParams(
        n_patients=4,
        n_sessions=8,
        session_duration_s=2400.0,
        total_seizures=12,
        seed=42,
        render_ecg=False,
    )
    cohort = generate_cohort(params)

    # Monitor one session per patient (preferring sessions with a seizure);
    # every other session contributes to the training data.
    monitored = {}
    for patient in cohort.patients:
        sessions = sorted(patient.recordings, key=lambda r: -r.n_seizures)
        monitored[patient.patient_id] = sessions[0]
    monitored_sessions = {r.session_id for r in monitored.values()}

    features = extract_cohort_features(cohort)
    train_mask = ~np.isin(features.session_ids, sorted(monitored_sessions))
    X_train, y_train = features.X[train_mask], features.y[train_mask]

    print("Monitored fleet:")
    for patient_id, recording in sorted(monitored.items()):
        print(
            "  patient %d, session %d, %d annotated seizure(s)"
            % (patient_id, recording.session_id, recording.n_seizures)
        )
        for seizure in recording.seizures:
            print(
                "    expert annotation: onset %6.0f s, duration %4.0f s"
                % (seizure.onset_s, seizure.duration_s)
            )

    # ------------------------------------------------------------- training
    model = train_svm(X_train, y_train)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
    print(
        "\nTrained quadratic SVM: %d support vectors, quantised to 9/15 bits"
        % model.n_support_vectors
    )

    # ------------------------------------------ raw ECG -> per-patient chunks
    rng = np.random.default_rng(7)
    streams = {}
    for patient_id, recording in sorted(monitored.items()):
        ecg = synthesize_ecg(
            recording.beat_times_s, recording.duration_s, recording.respiration, rng
        )
        streams[patient_id] = [
            ecg.ecg_mv[lo : lo + CHUNK_SAMPLES]
            for lo in range(0, ecg.ecg_mv.size, CHUNK_SAMPLES)
        ]
        fs = ecg.fs
    n_chunks = sum(len(chunks) for chunks in streams.values())
    print(
        "Streaming %d chunks (%.0f s each) from %d patients, drained every %d chunks"
        % (n_chunks, CHUNK_SAMPLES / fs, len(streams), DRAIN_EVERY)
    )

    # ------------------------------------------- fleet streaming + inference
    fleet = MonitorFleet(detector, fs)
    decisions = fleet.run(streams, drain_every=DRAIN_EVERY)

    windowing = WindowingParams()
    print("\nAlarm timelines (one three-minute window per line):")
    n_windows = 0
    n_classified = 0
    n_correct = 0
    n_alarms = 0
    for patient_id, recording in sorted(monitored.items()):
        print("  patient %d:" % patient_id)
        for decision in [d for d in decisions if d.patient_id == patient_id]:
            truth = window_label(
                decision.start_s,
                decision.end_s,
                recording.seizures,
                windowing.min_ictal_fraction,
            )
            marker = "ALARM" if decision.alarm else "  -  "
            predicted = 1 if decision.alarm else -1
            if not decision.usable:
                agreement = "unusable window"
            elif predicted == truth:
                agreement = "ok"
            else:
                agreement = "missed" if truth == 1 else "false alarm"
            n_windows += 1
            n_classified += int(decision.usable)
            n_alarms += int(decision.alarm)
            n_correct += int(decision.usable and predicted == truth)
            print(
                "    %5.0f - %5.0f s   %s   (annotation: %s, %s)"
                % (
                    decision.start_s,
                    decision.end_s,
                    marker,
                    "seizure" if truth == 1 else "background",
                    agreement,
                )
            )
    print(
        "window accuracy across the fleet: %d / %d classified (%d unusable), %d alarm(s) raised"
        % (n_correct, n_classified, n_windows - n_classified, n_alarms)
    )

    # ----------------------------------------------------------- energy bill
    report = hardware_cost(
        n_features=model.n_features,
        n_support_vectors=model.n_support_vectors,
        feature_bits=9,
        coeff_bits=15,
        per_feature_scaling=True,
    )
    # Only windows that actually ran through the classifier draw energy.
    fleet_energy_uj = report.energy_nj * n_classified / 1000.0
    monitored_minutes = sum(r.duration_s for r in monitored.values()) / 60.0
    print(
        "\nAccelerator model (%s): %.0f nJ per classification, %.4f mm2"
        % (TECH_40NM.name, report.energy_nj, report.area_mm2)
    )
    print(
        "Inference energy for %.0f monitored minutes: %.2f uJ (%d classified windows)"
        % (monitored_minutes, fleet_energy_uj, n_classified)
    )


if __name__ == "__main__":
    main()
