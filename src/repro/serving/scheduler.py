"""Drain scheduling for the serving engine.

PR 1's fleet drained on a hard-coded every-N-chunks counter.  This module
turns the *when to classify* decision into a first-class policy object so a
deployment can trade latency against batching efficiency without touching the
fleet code:

* :class:`ChunkCountPolicy` — drain every N ingested chunks (the old
  behaviour, now explicit);
* :class:`PendingWindowPolicy` — drain once at least N completed windows are
  queued (bounds the batch size, maximises vectorisation);
* :class:`LatencyPolicy` — drain once the *oldest* queued window has waited
  longer than a wall-clock budget (bounds alarm latency, the quantity that
  matters clinically);
* :class:`AnyOf` — fire when any sub-policy fires (e.g. "every 256 windows
  or 5 seconds, whichever comes first").

A fleet summarises its queue state in a :class:`DrainStats` snapshot and asks
the policy :meth:`DrainPolicy.should_drain` after every ingested chunk (and
on explicit :meth:`~repro.serving.fleet.MonitorFleet.maybe_drain` polls);
after an actual drain it calls :meth:`DrainPolicy.notify_drain` so stateful
policies can reset.  Policies only *observe* — all queue bookkeeping (chunk
counters, oldest-window timestamps, the injectable monotonic clock that makes
latency policies testable) lives in the fleet.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

__all__ = [
    "DrainStats",
    "DrainPolicy",
    "ChunkCountPolicy",
    "PendingWindowPolicy",
    "LatencyPolicy",
    "AnyOf",
    "merge_stats",
]


@dataclass(frozen=True)
class DrainStats:
    """Snapshot of a fleet's queue state, as seen by a :class:`DrainPolicy`."""

    #: Completed windows queued for classification.
    pending_windows: int
    #: Chunks ingested since the last drain.
    chunks_since_drain: int
    #: Wall-clock age of the oldest queued window (0.0 when the queue is
    #: empty), measured on the fleet's monotonic clock.
    oldest_pending_age_s: float
    #: Number of registered patients.
    n_patients: int


def merge_stats(
    parts: Iterable[DrainStats], *, chunks_since_drain: Optional[int] = None
) -> DrainStats:
    """Combine per-shard snapshots into one fleet-level snapshot.

    Counters add; the oldest pending age is the max over shards (the worst
    latency anywhere in the fleet is what a latency policy must bound).

    ``chunks_since_drain`` lets an aggregator that keeps its *own* exact
    chunk counter (``ShardedFleet``) override the per-shard sum.  The two
    diverge after a partial drain failure: shards that drained successfully
    reset their counters, but fleet-level the drain has not happened — the
    fleet-level meaning of the field is "chunks since the last
    fully-successful fleet-wide drain", and only the aggregator knows that.
    """
    parts = list(parts)
    if chunks_since_drain is None:
        chunks_since_drain = sum(p.chunks_since_drain for p in parts)
    return DrainStats(
        pending_windows=sum(p.pending_windows for p in parts),
        chunks_since_drain=int(chunks_since_drain),
        oldest_pending_age_s=max((p.oldest_pending_age_s for p in parts), default=0.0),
        n_patients=sum(p.n_patients for p in parts),
    )


class DrainPolicy(ABC):
    """Decides when a fleet should classify its queued windows."""

    @abstractmethod
    def should_drain(self, stats: DrainStats) -> bool:
        """Return ``True`` to trigger a drain given the current queue state."""

    def notify_drain(self, stats: DrainStats) -> None:
        """Called after every drain (the stats are the pre-drain snapshot)."""


class ChunkCountPolicy(DrainPolicy):
    """Drain after every ``every_chunks`` ingested chunks."""

    def __init__(self, every_chunks: int) -> None:
        if every_chunks <= 0:
            raise ValueError("every_chunks must be positive")
        self.every_chunks = int(every_chunks)

    def should_drain(self, stats: DrainStats) -> bool:
        return stats.chunks_since_drain >= self.every_chunks

    def __repr__(self) -> str:
        return "ChunkCountPolicy(every_chunks=%d)" % self.every_chunks


class PendingWindowPolicy(DrainPolicy):
    """Drain once at least ``max_pending`` completed windows are queued."""

    def __init__(self, max_pending: int) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.max_pending = int(max_pending)

    def should_drain(self, stats: DrainStats) -> bool:
        return stats.pending_windows >= self.max_pending

    def __repr__(self) -> str:
        return "PendingWindowPolicy(max_pending=%d)" % self.max_pending


class LatencyPolicy(DrainPolicy):
    """Drain once the oldest queued window is older than ``max_age_s``.

    With ``max_age_s=0.0`` the fleet drains whenever anything is pending —
    the lowest-latency (and least batched) configuration, and a handy
    deterministic setting for tests.
    """

    def __init__(self, max_age_s: float) -> None:
        if max_age_s < 0.0:
            raise ValueError("max_age_s must be non-negative")
        self.max_age_s = float(max_age_s)

    def should_drain(self, stats: DrainStats) -> bool:
        return stats.pending_windows > 0 and stats.oldest_pending_age_s >= self.max_age_s

    def __repr__(self) -> str:
        return "LatencyPolicy(max_age_s=%g)" % self.max_age_s


class AnyOf(DrainPolicy):
    """Composite policy: drain when *any* sub-policy wants to."""

    def __init__(self, policies: Sequence[DrainPolicy]) -> None:
        if not policies:
            raise ValueError("AnyOf needs at least one sub-policy")
        self.policies = tuple(policies)

    def should_drain(self, stats: DrainStats) -> bool:
        return any(policy.should_drain(stats) for policy in self.policies)

    def notify_drain(self, stats: DrainStats) -> None:
        for policy in self.policies:
            policy.notify_drain(stats)

    def __repr__(self) -> str:
        return "AnyOf(%s)" % ", ".join(repr(p) for p in self.policies)
