"""Feature extraction: the 53-feature set of the paper.

The baseline detector (Forooghifar et al., DSD 2018 — reference [6] of the
paper) computes 53 features per three-minute ECG window, organised in four
groups; the paper's Figure 3 and the feature-reduction exploration of
Section III operate on exactly this structure:

* **features 1–8**   — heart-rate / HRV statistics (:mod:`repro.features.hrv`),
* **features 9–15**  — Lorenz (Poincaré) plot descriptors (:mod:`repro.features.lorenz`),
* **features 16–24** — auto-regressive model coefficients of the ECG-derived
  respiration series (:mod:`repro.features.ar_features`),
* **features 25–53** — power-spectral-density band powers of the ECG-derived
  respiration series (:mod:`repro.features.psd_features`).

:mod:`repro.features.extractor` assembles the per-window vectors into a
:class:`~repro.features.extractor.FeatureMatrix` with the labels and the
session identifiers needed by the leave-one-session-out evaluation.
"""

from repro.features.catalog import (
    FEATURE_GROUPS,
    FEATURE_NAMES,
    N_FEATURES,
    FeatureGroup,
    feature_group_of,
    group_indices,
)
from repro.features.cache import BeatPartialCache, BeatPartials
from repro.features.hrv import hrv_features, HRV_FEATURE_NAMES
from repro.features.lorenz import lorenz_features, LORENZ_FEATURE_NAMES
from repro.features.edr import edr_series_from_amplitudes, edr_series_from_ecg
from repro.features.ar_features import ar_features, AR_FEATURE_NAMES, AR_ORDER
from repro.features.psd_features import psd_features, PSD_FEATURE_NAMES, PSD_BANDS
from repro.features.extractor import (
    FeatureExtractionParams,
    FeatureExtractor,
    FeatureMatrix,
    extract_cohort_features,
)

__all__ = [
    "FEATURE_GROUPS",
    "FEATURE_NAMES",
    "N_FEATURES",
    "FeatureGroup",
    "feature_group_of",
    "group_indices",
    "BeatPartialCache",
    "BeatPartials",
    "hrv_features",
    "HRV_FEATURE_NAMES",
    "lorenz_features",
    "LORENZ_FEATURE_NAMES",
    "edr_series_from_amplitudes",
    "edr_series_from_ecg",
    "ar_features",
    "AR_FEATURE_NAMES",
    "AR_ORDER",
    "psd_features",
    "PSD_FEATURE_NAMES",
    "PSD_BANDS",
    "FeatureExtractionParams",
    "FeatureExtractor",
    "FeatureMatrix",
    "extract_cohort_features",
]
