"""Basic filtering primitives used across the feature-extraction chain.

The per-window hot path calls :func:`moving_average` and :func:`detrend` on
every analysis window, so both memoise the parts of their computation that
depend only on the input *length* (the averaging kernel, the edge-count
normaliser, the centred time grid) — pure functions of ``(n, width)`` /
``n``, cached bounded, and bit-identical to recomputing them.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["moving_average", "difference", "detrend", "bandpass_fir", "apply_fir"]

#: (signal length, width) -> (kernel, clipped edge-count normaliser).
_MA_CACHE: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
#: signal length -> (centred time grid t, dot(t, t)).
_DETREND_CACHE: Dict[int, Tuple[np.ndarray, float]] = {}
#: Memoisation bound; cleared wholesale when exceeded (window lengths vary
#: with the beat count, so the key space is finite but not fixed).
_CACHE_LIMIT = 512


def moving_average(x: np.ndarray, width: int) -> np.ndarray:
    """Centered moving average with edge handling by shrinking the window.

    Parameters
    ----------
    x:
        Input signal (1-D).
    width:
        Window width in samples; values smaller than 2 return a copy.
    """
    x = np.asarray(x, dtype=float)
    if width < 2 or x.size == 0:
        return x.copy()
    key = (x.size, int(width))
    cached = _MA_CACHE.get(key)
    if cached is None:
        if len(_MA_CACHE) >= _CACHE_LIMIT:
            _MA_CACHE.clear()
        kernel = np.ones(width) / width
        counts = np.maximum(np.convolve(np.ones(x.size), kernel, mode="same"), 1e-12)
        kernel.setflags(write=False)
        counts.setflags(write=False)
        cached = (kernel, counts)
        _MA_CACHE[key] = cached
    kernel, counts = cached
    # 'same' convolution then fix the edges where the kernel was truncated.
    smoothed = np.convolve(x, kernel, mode="same")
    return smoothed / counts


def difference(x: np.ndarray) -> np.ndarray:
    """First difference with the same length as the input (prepends a zero)."""
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        return x.copy()
    return np.concatenate(([0.0], np.diff(x)))


def detrend(x: np.ndarray) -> np.ndarray:
    """Remove the best-fit straight line from a signal.

    Used before AR and PSD estimation so that the very-low-frequency trend
    does not dominate the spectrum.
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    if n < 3:
        return x - (np.mean(x) if n else 0.0)
    cached = _DETREND_CACHE.get(n)
    if cached is None:
        if len(_DETREND_CACHE) >= _CACHE_LIMIT:
            _DETREND_CACHE.clear()
        t = np.arange(n, dtype=float)
        t -= t.mean()
        t.setflags(write=False)
        cached = (t, float(np.dot(t, t)))
        _DETREND_CACHE[n] = cached
    t, t_dot_t = cached
    centred = x - x.mean()
    slope = np.dot(t, centred) / t_dot_t
    return centred - slope * t


def bandpass_fir(
    low_hz: float, high_hz: float, fs: float, numtaps: int = 101
) -> np.ndarray:
    """Design a linear-phase band-pass FIR filter by the windowed-sinc method.

    The implementation is deliberately self-contained (no ``scipy.signal``
    dependency) so the substrate remains easy to port to an embedded target.

    Parameters
    ----------
    low_hz, high_hz:
        Pass-band edges in Hz (``0 < low_hz < high_hz < fs / 2``).
    fs:
        Sampling frequency in Hz.
    numtaps:
        Number of filter coefficients (made odd if an even value is given).
    """
    if not (0.0 < low_hz < high_hz < fs / 2.0):
        raise ValueError("require 0 < low_hz < high_hz < fs/2")
    if numtaps % 2 == 0:
        numtaps += 1
    m = np.arange(numtaps) - (numtaps - 1) / 2.0
    # Ideal band-pass = difference of two low-pass sinc prototypes.
    def _lowpass(cutoff_hz: float) -> np.ndarray:
        normalized = 2.0 * cutoff_hz / fs
        return normalized * np.sinc(normalized * m)

    taps = _lowpass(high_hz) - _lowpass(low_hz)
    taps *= np.hamming(numtaps)
    # Normalise the pass-band gain at the geometric centre frequency.
    centre = np.sqrt(low_hz * high_hz)
    omega = 2.0 * np.pi * centre / fs
    gain = np.abs(np.sum(taps * np.exp(-1j * omega * np.arange(numtaps))))
    if gain > 1e-12:
        taps /= gain
    return taps


def apply_fir(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Zero-phase application of an FIR filter (forward filtering, group-delay
    compensated), returning a signal the same length as the input."""
    x = np.asarray(x, dtype=float)
    taps = np.asarray(taps, dtype=float)
    if x.size == 0:
        return x.copy()
    delay = (taps.size - 1) // 2
    padded = np.concatenate((x, np.full(delay, x[-1])))
    filtered = np.convolve(padded, taps, mode="full")
    return filtered[delay : delay + x.size]
