"""Leave-one-session-out cross-validation.

The paper reports the average sensitivity, specificity and GM over 24 folds,
where each fold uses the ECG windows of one recording session as the test set
and all the others for training.  :func:`leave_one_session_out` implements
that protocol over any *model factory*, so the same evaluation loop serves the
float models (Table I), the budgeted models (Figure 5) and the fixed-point
pipelines (Figures 6 and 7).

Folds whose test session contains no seizure window have an undefined
sensitivity; following standard practice those folds contribute to the
specificity average only (and vice versa).  The pooled confusion counts over
all folds are also reported for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence

import numpy as np

from repro.core.metrics import ClassificationMetrics, geometric_mean
from repro.features.extractor import FeatureMatrix
from repro.quant.quantized_model import QuantizationConfig, QuantizedSVM
from repro.svm.budget import BudgetParams, budget_training_set
from repro.svm.kernels import Kernel, PolynomialKernel
from repro.svm.model import SVMModel, SVMTrainParams, train_svm

__all__ = [
    "Predictor",
    "FoldOutcome",
    "CrossValidationResult",
    "leave_one_session_out",
    "float_svm_factory",
    "budgeted_svm_factory",
    "quantized_svm_factory",
]


class Predictor(Protocol):
    """Anything with a ``predict(X) -> labels`` method."""

    def predict(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover - protocol
        ...


#: A model factory maps a training fold to a predictor.
ModelFactory = Callable[[np.ndarray, np.ndarray], Predictor]


@dataclass
class FoldOutcome:
    """Result of a single held-out session."""

    session_id: int
    metrics: ClassificationMetrics
    n_support_vectors: int
    n_features: int
    n_test_windows: int


@dataclass
class CrossValidationResult:
    """Aggregate of a full leave-one-session-out evaluation."""

    folds: List[FoldOutcome] = field(default_factory=list)

    @property
    def n_folds(self) -> int:
        return len(self.folds)

    @property
    def sensitivity(self) -> float:
        """Mean sensitivity over the folds that contain seizure windows."""
        values = [f.metrics.sensitivity for f in self.folds if f.metrics.sensitivity is not None]
        return float(np.mean(values)) if values else float("nan")

    @property
    def specificity(self) -> float:
        """Mean specificity over the folds that contain background windows."""
        values = [f.metrics.specificity for f in self.folds if f.metrics.specificity is not None]
        return float(np.mean(values)) if values else float("nan")

    @property
    def gm(self) -> float:
        """Geometric mean of the average sensitivity and specificity.

        The paper reports per-kernel Se, Sp and GM whose GM column matches
        ``sqrt(mean(Se) × mean(Sp))`` rather than the mean of per-fold GMs
        (many folds have no seizure and would force per-fold GMs to zero), so
        the same convention is used here.
        """
        se, sp = self.sensitivity, self.specificity
        if np.isnan(se) or np.isnan(sp):
            return float("nan")
        return geometric_mean(se, sp)

    @property
    def pooled_metrics(self) -> ClassificationMetrics:
        """Confusion counts pooled over every fold."""
        pooled = ClassificationMetrics(0, 0, 0, 0)
        for fold in self.folds:
            pooled = pooled.merged_with(fold.metrics)
        return pooled

    @property
    def mean_support_vectors(self) -> float:
        """Average number of support vectors across folds (sizes the SV memory)."""
        if not self.folds:
            return float("nan")
        return float(np.mean([f.n_support_vectors for f in self.folds]))

    @property
    def n_features(self) -> int:
        return self.folds[0].n_features if self.folds else 0

    def summary(self) -> dict:
        return {
            "n_folds": self.n_folds,
            "sensitivity": self.sensitivity,
            "specificity": self.specificity,
            "gm": self.gm,
            "mean_support_vectors": self.mean_support_vectors,
            "n_features": self.n_features,
        }


def _predictor_sv_count(predictor: Predictor) -> int:
    """Number of support vectors of a predictor, if it exposes one."""
    for attribute in ("n_support_vectors",):
        if hasattr(predictor, attribute):
            return int(getattr(predictor, attribute))
    model = getattr(predictor, "model", None)
    if isinstance(model, SVMModel):
        return model.n_support_vectors
    return 0


def leave_one_session_out(
    features: FeatureMatrix,
    model_factory: ModelFactory,
    sessions: Optional[Sequence[int]] = None,
) -> CrossValidationResult:
    """Run the paper's evaluation protocol for an arbitrary model factory.

    Parameters
    ----------
    features:
        The labelled, session-annotated feature matrix.
    model_factory:
        Callable mapping ``(X_train, y_train)`` to a fitted predictor.
    sessions:
        Optional subset of session identifiers to evaluate (defaults to all).

    Returns
    -------
    :class:`CrossValidationResult`
    """
    result = CrossValidationResult()
    fold_sessions = list(sessions) if sessions is not None else list(features.sessions)
    for session_id in fold_sessions:
        train, test = features.split_session(int(session_id))
        if test.n_samples == 0:
            continue
        if train.n_positive == 0 or train.n_negative == 0:
            # A fold whose training data lost one class entirely cannot train
            # a discriminative model; skip it (does not happen with the
            # default cohort but guards small synthetic configurations).
            continue
        predictor = model_factory(train.X, train.y)
        y_pred = np.asarray(predictor.predict(test.X), dtype=int)
        metrics = ClassificationMetrics.from_predictions(test.y, y_pred)
        result.folds.append(
            FoldOutcome(
                session_id=int(session_id),
                metrics=metrics,
                n_support_vectors=_predictor_sv_count(predictor),
                n_features=train.n_features,
                n_test_windows=test.n_samples,
            )
        )
    return result


# --------------------------------------------------------------------------
# Model factories for the three kinds of pipelines evaluated in the paper.
# --------------------------------------------------------------------------

def float_svm_factory(
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
) -> ModelFactory:
    """Factory producing float (double-precision) SVMs — Table I."""
    def build(X: np.ndarray, y: np.ndarray) -> SVMModel:
        return train_svm(X, y, kernel=kernel or PolynomialKernel(degree=2), params=train_params)

    return build


def budgeted_svm_factory(
    budget: int,
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
    chunk_fraction: float = 0.25,
) -> ModelFactory:
    """Factory producing SV-budgeted SVMs — Figure 5."""
    def build(X: np.ndarray, y: np.ndarray) -> SVMModel:
        model, _ = budget_training_set(
            X,
            y,
            kernel=kernel or PolynomialKernel(degree=2),
            train_params=train_params,
            budget_params=BudgetParams(budget=budget, chunk_fraction=chunk_fraction),
        )
        return model

    return build


def quantized_svm_factory(
    quantization: QuantizationConfig,
    budget: Optional[int] = None,
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
    chunk_fraction: float = 0.25,
) -> ModelFactory:
    """Factory producing fixed-point pipelines — Figures 6 and 7.

    A float model is trained first (optionally SV-budgeted), then converted to
    the integer datapath with the requested quantisation configuration.
    """
    def build(X: np.ndarray, y: np.ndarray) -> QuantizedSVM:
        quad = kernel or PolynomialKernel(degree=2)
        if budget is None:
            model = train_svm(X, y, kernel=quad, params=train_params)
        else:
            model, _ = budget_training_set(
                X,
                y,
                kernel=quad,
                train_params=train_params,
                budget_params=BudgetParams(budget=budget, chunk_fraction=chunk_fraction),
            )
        return QuantizedSVM(model, quantization)

    return build
